"""The runtime lock-order detector: hazards the AST cannot see.

The static LD rules check *lexical* lock discipline; a nested
acquisition that only happens dynamically (a callback invoked under a
read section that re-enters ``Dataset.query``, say) is invisible to
them.  This module instruments :class:`repro.util.sync.RWLock` through
the observer seam in that module:

* **per-thread held-lock stacks** -- every acquire/release updates a
  thread-local stack, so the detector always knows what the acquiring
  thread already holds;
* **re-entrant acquisition** (the nested-read deadlock documented in
  ``util/sync.py``) is vetoed *before* the thread blocks: the
  acquisition raises :class:`LockHazardError` instead of deadlocking
  the suite, with the report saying whether a writer was actually
  waiting (a live deadlock) or not (a latent one that deadlocks the
  first time a write lands mid-read);
* **cross-lock acquisition order** feeds a global edge graph (lock A
  held while acquiring lock B adds ``A -> B``); a new edge that closes
  a cycle is recorded as an ``order-cycle`` hazard -- two threads
  taking the locks in opposite orders can deadlock even though each
  thread's sections are flat.

Switch it on for any process with ``REPRO_LOCK_DEBUG=1`` (the pytest
plugin in :mod:`repro.analysis.pytest_plugin` does this for the whole
test suite) or programmatically via :func:`install`.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.errors import ReproError
from repro.util import sync

#: Environment variable that switches the detector on.
ENV_VAR = "REPRO_LOCK_DEBUG"

_TRUTHY = ("1", "true", "on", "yes")


def enabled_by_env(environ: dict | None = None) -> bool:
    """Whether :data:`ENV_VAR` asks for the detector."""
    value = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    return value.strip().lower() in _TRUTHY


class LockHazardError(ReproError):
    """A lock acquisition that would (or could) deadlock, reported
    instead of hanging the process."""


@dataclass(frozen=True)
class Hazard:
    """One recorded concurrency hazard."""

    kind: str  #: "reentrant-read" | "reentrant-write" | "order-cycle"
    description: str
    thread: str
    held: tuple[str, ...]  #: (lock, mode) pairs rendered, outermost first

    def __str__(self) -> str:
        held = " -> ".join(self.held) if self.held else "(nothing)"
        return f"[{self.kind}] {self.description} (thread {self.thread}, holding {held})"


class LockOrderDetector:
    """The observer :func:`repro.util.sync.set_observer` accepts.

    ``raise_on_reentry=True`` (the default) turns a re-entrant
    acquisition into an immediate :class:`LockHazardError` in the
    offending thread -- the hazard is also recorded, so a harness can
    assert on :attr:`hazards` either way.  Order-cycle hazards are
    always record-only: by the time the cycle-closing edge appears the
    acquisition itself is usually safe, and raising would fail
    whichever thread happened to run second.
    """

    def __init__(self, raise_on_reentry: bool = True) -> None:
        self.raise_on_reentry = raise_on_reentry
        self.hazards: list[Hazard] = []
        self._mutex = threading.Lock()
        self._local = threading.local()
        #: id(lock) -> stable display name; the strong reference in
        #: ``_refs`` pins the id so reuse cannot alias two locks.
        self._names: dict[int, str] = {}
        self._refs: dict[int, object] = {}
        #: "acquired-after" edges between lock names, with the first
        #: (thread, held, acquiring) site that created each edge.
        self._edges: dict[str, set[str]] = {}

    # -- bookkeeping -------------------------------------------------------

    def _name(self, lock: object) -> str:
        key = id(lock)
        with self._mutex:
            name = self._names.get(key)
            if name is None:
                name = f"RWLock#{len(self._names) + 1}"
                self._names[key] = name
                self._refs[key] = lock
            return name

    def _held(self) -> list[tuple[str, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _held_render(self) -> tuple[str, ...]:
        return tuple(f"{name}:{mode}" for name, mode in self._held())

    def _record(self, hazard: Hazard) -> None:
        with self._mutex:
            self.hazards.append(hazard)

    def _path(self, start: str, goal: str) -> list[str] | None:
        """A directed path start -> ... -> goal in the edge graph
        (callers hold ``_mutex``)."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    # -- the observer protocol (called from util.sync) ---------------------

    def before_acquire(self, lock: object, mode: str) -> None:
        name = self._name(lock)
        held = self._held()
        for held_name, held_mode in held:
            if held_name != name:
                continue
            writer_waiting = bool(getattr(lock, "_writers_waiting", 0))
            if held_mode == "read" and mode == "read":
                state = (
                    "a writer is waiting: this is the nested-read deadlock"
                    if writer_waiting
                    else "latent deadlock: it hangs the first time a writer "
                    "is waiting between the two acquisitions"
                )
                hazard = Hazard(
                    "reentrant-read",
                    f"nested read of {name} in one thread ({state})",
                    threading.current_thread().name,
                    self._held_render(),
                )
            else:
                hazard = Hazard(
                    "reentrant-write",
                    f"{mode} acquisition of {name} while already holding its "
                    f"{held_mode} section (RWLock is not re-entrant; this "
                    "deadlocks unconditionally)",
                    threading.current_thread().name,
                    self._held_render(),
                )
            self._record(hazard)
            if self.raise_on_reentry:
                raise LockHazardError(str(hazard))
            return
        for held_name, _ in held:
            if held_name == name:
                continue
            with self._mutex:
                closes_cycle = self._path(name, held_name)
                self._edges.setdefault(held_name, set()).add(name)
            if closes_cycle is not None:
                self._record(
                    Hazard(
                        "order-cycle",
                        f"acquiring {name} while holding {held_name} closes the "
                        f"cycle {' -> '.join(closes_cycle)} -> {name}: "
                        "another thread takes these locks in the opposite order",
                        threading.current_thread().name,
                        self._held_render(),
                    )
                )

    def acquired(self, lock: object, mode: str) -> None:
        self._held().append((self._name(lock), mode))

    def released(self, lock: object, mode: str) -> None:
        held = self._held()
        name = self._name(lock)
        for index in range(len(held) - 1, -1, -1):
            if held[index] == (name, mode):
                del held[index]
                return
        # An unmatched release means the observer was installed while
        # the section was already held; ignore rather than misreport.

    # -- harness surface ---------------------------------------------------

    def reset(self) -> None:
        """Clear recorded hazards and the order graph (lock names
        persist, so reports stay stable across a session)."""
        with self._mutex:
            self.hazards.clear()
            self._edges.clear()

    def report(self) -> str:
        with self._mutex:
            hazards = list(self.hazards)
        if not hazards:
            return "lock detector: no hazards"
        lines = [f"lock detector: {len(hazards)} hazard(s)"]
        lines.extend(f"  {hazard}" for hazard in hazards)
        return "\n".join(lines)


_active: LockOrderDetector | None = None


def install(detector: LockOrderDetector | None = None) -> LockOrderDetector:
    """Install ``detector`` (or a fresh one) as the process-wide lock
    observer and return it."""
    global _active
    _active = detector if detector is not None else LockOrderDetector()
    sync.set_observer(_active)
    return _active


def uninstall() -> None:
    """Remove the observer; RWLock goes back to zero-overhead."""
    global _active
    _active = None
    sync.set_observer(None)


def active_detector() -> LockOrderDetector | None:
    """The currently installed detector, if any."""
    return _active
