"""Pytest plugin: run the whole suite under the lock-order detector.

Loaded from ``tests/conftest.py`` (``pytest_plugins``); activation is
opt-in via ``REPRO_LOCK_DEBUG=1`` so local runs pay nothing unless
asked.  CI's tier-1 job sets the variable, turning every test into a
concurrency probe: any re-entrant RWLock acquisition or cross-lock
order cycle the suite provokes -- including from background serving
threads -- fails the test that triggered it with the detector's
report instead of deadlocking the job.
"""

from __future__ import annotations

import pytest

from repro.analysis import runtime


def pytest_configure(config) -> None:  # noqa: ANN001 - pytest hook
    if runtime.enabled_by_env() and runtime.active_detector() is None:
        config._repro_lock_detector = runtime.install()


def pytest_unconfigure(config) -> None:  # noqa: ANN001 - pytest hook
    if getattr(config, "_repro_lock_detector", None) is not None:
        runtime.uninstall()
        config._repro_lock_detector = None


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):  # noqa: ANN001 - pytest hook
    detector = runtime.active_detector()
    before = len(detector.hazards) if detector is not None else 0
    try:
        return (yield)
    finally:
        if detector is not None:
            fresh = detector.hazards[before:]
            if fresh:
                # Surface hazards even when the test itself passed (a
                # vetoed acquisition in a background thread does not
                # propagate to the test body on its own).
                item.add_report_section(
                    "call", "lock-hazards", "\n".join(str(hazard) for hazard in fresh)
                )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item, call):  # noqa: ANN001 - pytest hook
    report = yield
    detector = runtime.active_detector()
    if detector is not None and call.when == "call" and detector.hazards:
        if report.passed:
            # A hazard recorded during a passing test is still a bug: a
            # vetoed acquisition in a background thread does not
            # propagate to the test body on its own.
            report.outcome = "failed"
            report.longrepr = detector.report()
        # Either way the hazards are now accounted for (a failing test
        # already carries the LockHazardError); start the next test
        # clean so one hazard fails exactly one test.
        detector.reset()
    return report


def pytest_terminal_summary(terminalreporter) -> None:  # noqa: ANN001 - pytest hook
    detector = runtime.active_detector()
    if detector is not None:
        terminalreporter.write_line(detector.report())
