"""BB: the bench-baseline hygiene family.

``repro.bench compare`` gates performance against the repo-root
``BENCH_*.json`` baselines, matching files to scenarios by name.  The
gate degrades silently in both directions: a scenario without a
baseline is never compared, and a baseline whose scenario was renamed
or removed is skipped forever.  This checker closes the loop against
the live registry:

* ``BB001`` -- a registered scenario has no checked-in baseline;
* ``BB002`` -- a checked-in baseline names no registered scenario;
* ``BB003`` -- a baseline fails the result schema, or its embedded
  ``scenario`` field disagrees with its filename.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding, sort_findings


def check(root: Path) -> list[Finding]:
    """Cross-check the scenario registry against ``<root>/BENCH_*.json``."""
    from repro.bench.registry import all_scenarios
    from repro.bench.results import FILE_GLOB, BenchError, result_filename, validate_result

    findings: list[Finding] = []
    scenarios = {scenario.name for scenario in all_scenarios()}
    baselines = {path.name: path for path in sorted(root.glob(FILE_GLOB))}

    for name in sorted(scenarios):
        filename = result_filename(name)
        if filename not in baselines:
            findings.append(
                Finding(
                    "BB001",
                    filename,
                    1,
                    1,
                    f"scenario {name!r} is registered but has no checked-in "
                    f"baseline; run `python -m repro.bench run --scenario {name}` "
                    "and commit the result",
                )
            )

    for filename, path in baselines.items():
        expected = filename[len("BENCH_"):-len(".json")]
        if expected not in scenarios:
            findings.append(
                Finding(
                    "BB002",
                    filename,
                    1,
                    1,
                    f"baseline names scenario {expected!r}, which is not "
                    "registered (renamed or removed scenario?)",
                )
            )
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            findings.append(
                Finding("BB003", filename, 1, 1, f"baseline is not valid JSON: {error}")
            )
            continue
        try:
            validate_result(payload, what=filename)
        except BenchError as error:
            findings.append(Finding("BB003", filename, 1, 1, str(error)))
            continue
        if payload.get("scenario") != expected:
            findings.append(
                Finding(
                    "BB003",
                    filename,
                    1,
                    1,
                    f"baseline's scenario field is {payload.get('scenario')!r} "
                    f"but the filename says {expected!r}",
                )
            )
    return sort_findings(findings)
