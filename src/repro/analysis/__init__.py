"""Static analysis and runtime instrumentation for the house rules.

The stack's core guarantee -- batched == sequential == cached ==
HTTP-served == materialized answers, bit-identical -- rests on
conventions (pairwise/fsum-only float folds, flat non-reentrant RWLock
sections, a four-file wire surface) that this package enforces:

* :mod:`repro.analysis.floats` -- FD: float-determinism rules;
* :mod:`repro.analysis.locks` -- LD: lock-discipline rules;
* :mod:`repro.analysis.wire` -- WS: wire-surface consistency;
* :mod:`repro.analysis.bench_check` -- BB: bench-baseline hygiene;
* :mod:`repro.analysis.runtime` -- the runtime lock-order detector
  (what the AST cannot see: dynamic nesting and cross-lock cycles);
* ``python -m repro.analysis`` -- the CLI gate CI runs.

Suppress a finding with a *reasoned* pragma on (or directly above) the
offending line::

    # repro-lint: allow[FD001] integer partials, validated by schema
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import (
    RULES,
    RULES_BY_ID,
    AnalysisError,
    Finding,
    Rule,
    pragma_findings,
    sort_findings,
)


def run_checks(root: Path) -> tuple[list[Finding], int]:
    """Run every checker family over the tree at ``root``.

    Returns ``(findings, files scanned)``; findings are sorted by
    location.  Pragma hygiene (PG001) is checked over every ``src/``
    module, independent of which families scan it.
    """
    from repro.analysis import bench_check, floats, locks, wire
    from repro.analysis.core import load_source

    findings: list[Finding] = []
    findings.extend(floats.check(root))
    findings.extend(locks.check(root))
    findings.extend(wire.check(root))
    findings.extend(bench_check.check(root))
    sources = sorted((root / "src" / "repro").rglob("*.py"))
    for path in sources:
        findings.extend(pragma_findings(load_source(root, path)))
    return sort_findings(findings), len(sources)


__all__ = [
    "RULES",
    "RULES_BY_ID",
    "AnalysisError",
    "Finding",
    "Rule",
    "pragma_findings",
    "run_checks",
    "sort_findings",
]
