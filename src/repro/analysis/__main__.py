"""``python -m repro.analysis`` -- the house-rule gate.

Runs every checker family over a repository tree and exits non-zero on
findings, so CI can gate on it directly::

    python -m repro.analysis                  # text report, repo root = cwd
    python -m repro.analysis --format json    # machine-readable report
    python -m repro.analysis --rules FD,WS005 # family prefixes or exact IDs
    python -m repro.analysis --list-rules     # the catalogue with rationale

Exit codes: 0 clean, 1 findings, 2 harness failure (unreadable tree,
unknown rule filter).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import run_checks
from repro.analysis.core import REPORT_SCHEMA_VERSION, RULES, AnalysisError, Finding


def _matches(finding: Finding, filters: list[str]) -> bool:
    return any(finding.rule == f or finding.rule.startswith(f) for f in filters)


def _text_report(findings: list[Finding], files_scanned: int) -> str:
    lines = [
        f"{finding.path}:{finding.line}:{finding.col}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro.analysis: {len(findings)} {noun} over {files_scanned} files")
    return "\n".join(lines)


def _json_report(findings: list[Finding], files_scanned: int, root: Path) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return json.dumps(
        {
            "schema_version": REPORT_SCHEMA_VERSION,
            "root": str(root),
            "ok": not findings,
            "files_scanned": files_scanned,
            "counts": dict(sorted(counts.items())),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="house-rule static analysis: float determinism, lock "
        "discipline, wire-surface consistency, bench-baseline hygiene",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule IDs or family prefixes to report (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue with rationale and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.summary}")
            print(f"    why: {rule.rationale}")
        return 0

    filters: list[str] | None = None
    if args.rules is not None:
        filters = [token.strip() for token in args.rules.split(",") if token.strip()]
        known = {rule.id for rule in RULES}
        bad = [f for f in filters if f not in known and not any(r.startswith(f) for r in known)]
        if bad:
            print(f"repro.analysis: unknown rule filter(s) {bad}", file=sys.stderr)
            return 2

    root = args.root.resolve()
    if not (root / "src" / "repro").is_dir():
        print(
            f"repro.analysis: {root} does not look like the repository root "
            "(no src/repro); pass --root",
            file=sys.stderr,
        )
        return 2

    try:
        findings, files_scanned = run_checks(root)
    except AnalysisError as error:
        print(f"repro.analysis: {error}", file=sys.stderr)
        return 2
    if filters is not None:
        findings = [finding for finding in findings if _matches(finding, filters)]

    if args.format == "json":
        print(_json_report(findings, files_scanned, root))
    else:
        print(_text_report(findings, files_scanned))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
