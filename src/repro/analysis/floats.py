"""FD: the float-determinism family.

The stack's core guarantee is that every serving surface returns
bit-identical floats: batched == sequential == cached == HTTP-served ==
materialized.  That holds only while every float fold is one of the two
sanctioned shapes -- numpy *pairwise* slice sums combined by an
explicit sequential accumulator (the engine's contract, see
``engine/kernels.py``), or ``math.fsum`` where *every* path folds
through it (the group-by rollup).  This checker walks the fold-path
packages (``engine/``, ``materialize/``, ``api/``) and flags the
shapes that break the contract:

* ``FD001`` -- builtin ``sum()`` over values that are not provably
  integral (integer folds are exact below 2**53 under any order, so
  counters are exempt);
* ``FD002`` -- ``math.fsum`` outside the allowlisted rollup sites;
* ``FD003`` -- accumulation inside a ``for`` over a set (hash order).

"Provably integral" is a deliberately shallow syntactic judgement
(``int(...)``/``len(...)`` calls, known counter attribute names,
integer constants); anything the checker cannot prove is a finding,
and genuinely-integer sites it cannot see through carry a reasoned
``allow[FD001]`` pragma instead of weakening the heuristic.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.core import (
    Finding,
    SourceFile,
    call_name,
    dotted_name,
    filter_allowed,
    load_source,
    python_files,
)

#: Packages whose modules hold fold paths (the serving answer's float
#: pipeline); geometry/baselines/experiments fold floats too but are
#: not on the bit-identity contract.
FOLD_PACKAGES = ("engine", "materialize", "api")

#: ``math.fsum`` call sites that are *the* sanctioned fold: every
#: execution path to these answers goes through fsum, so exactness is
#: part of the contract rather than a divergence from it.
#: ``(path suffix, enclosing function)`` pairs.
FSUM_ALLOWLIST = (
    ("repro/engine/executor.py", "merge_results"),
)

#: Attribute / method names that are integer counters by schema
#: (QueryResult and stats telemetry); folding them with builtin sum is
#: exact under any order.
_INT_ATTRS = frozenset(
    {
        "count",
        "counts",
        "cells_probed",
        "cache_hits",
        "num_cells",
        "from_cache",
        "covering_cached",
        "hits",
        "misses",
        "evictions",
        "entries",
        "size",
        "nbytes",
        "version",
        "appended",
        "in_place",
        "delta_rows",
        "shards_total",
        "shards_pruned",
    }
)

#: Calls that produce integers (or bools, which fold exactly).
_INT_CALLS = frozenset({"int", "len", "bool", "ord"})

#: Bare names that read as integer collections; a shallow out for the
#: common ``sum(counts)`` shape where the element type is one
#: assignment away.
_INT_NAME = re.compile(r"(^|_)(counts?|sizes?|lengths?|hits|misses|indices)$")


def _is_integral(node: ast.AST) -> bool:
    """Whether ``node`` is provably an integer-valued expression under
    the shallow syntactic judgement documented in the module docstring."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, bool)) and not isinstance(node.value, float)
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is None:
            return False
        leaf = name.rsplit(".", 1)[-1]
        return leaf in _INT_CALLS or leaf in _INT_ATTRS
    if isinstance(node, ast.Attribute):
        return node.attr in _INT_ATTRS
    if isinstance(node, ast.Name):
        return bool(_INT_NAME.search(node.id))
    if isinstance(node, ast.IfExp):
        return _is_integral(node.body) and _is_integral(node.orelse)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)
    ):
        return _is_integral(node.left) and _is_integral(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_integral(node.operand)
    return False


def _sum_element(node: ast.Call) -> ast.AST:
    """The per-element expression a ``sum(...)`` call folds."""
    if not node.args:
        return node
    arg = node.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return arg.elt
    return arg


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


class _FoldVisitor(ast.NodeVisitor):
    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.findings: list[Finding] = []
        self._function_stack: list[str] = []

    # -- function context --------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self._function_stack.append(node.name)  # type: ignore[attr-defined]
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @property
    def _function(self) -> str:
        return self._function_stack[-1] if self._function_stack else "<module>"

    # -- FD001 / FD002 -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name == "sum":
            element = _sum_element(node)
            if not _is_integral(element):
                self.findings.append(
                    Finding(
                        "FD001",
                        self.source.relative,
                        node.lineno,
                        node.col_offset + 1,
                        "builtin sum() folds in iteration order; float folds in "
                        "this package must use math.fsum or numpy pairwise slice "
                        "sums (allow[FD001] with a reason if the values are "
                        "integers the checker cannot see)",
                    )
                )
        elif name is not None and name.rsplit(".", 1)[-1] == "fsum":
            allowed = any(
                self.source.relative.endswith(suffix) and self._function == function
                for suffix, function in FSUM_ALLOWLIST
            )
            if not allowed:
                self.findings.append(
                    Finding(
                        "FD002",
                        self.source.relative,
                        node.lineno,
                        node.col_offset + 1,
                        f"math.fsum in {self._function}() is outside the "
                        "allowlisted rollup sites; exact folds cannot be "
                        "reproduced by the sequential/pairwise paths the engine "
                        "gates bit-identical",
                    )
                )
        self.generic_visit(node)

    # -- FD003 -------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            for statement in ast.walk(node):
                if isinstance(statement, ast.AugAssign) and isinstance(
                    statement.op, ast.Add
                ):
                    if not _is_integral(statement.value):
                        target = dotted_name(statement.target) or "<target>"
                        self.findings.append(
                            Finding(
                                "FD003",
                                self.source.relative,
                                statement.lineno,
                                statement.col_offset + 1,
                                f"'{target} +=' accumulates over set iteration "
                                "(hash order); fold over a sorted or "
                                "insertion-ordered sequence",
                            )
                        )
        self.generic_visit(node)


def check_source(source: SourceFile) -> list[Finding]:
    """All FD findings in one file (pragma-filtered)."""
    visitor = _FoldVisitor(source)
    visitor.visit(source.tree)
    return filter_allowed(source, visitor.findings)


def check(root: Path) -> list[Finding]:
    """Run the FD family over the fold-path packages under ``root``."""
    findings: list[Finding] = []
    for package in FOLD_PACKAGES:
        for path in python_files(root, package):
            findings.extend(check_source(load_source(root, path)))
    return findings
