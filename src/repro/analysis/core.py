"""The checker framework of :mod:`repro.analysis`.

Everything the four checker families share lives here: the
:class:`Rule` catalogue (stable IDs, one-line summaries, and the house
rationale each rule enforces), the :class:`Finding` record, source-file
loading with a parse cache, and the suppression pragma.

Suppression is per line and must be *explained*::

    total = sum(partials)  # repro-lint: allow[FD001] int partials, proven upstream

A pragma on the finding's own line (or the line directly above, for
lines that are already long) silences the named rule there.  A pragma
without a reason string is itself a finding (``PG001``): the point of
the allowlist is a reviewable record of *why* each exception is safe,
not a mute button.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Bumped when the JSON report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1


class AnalysisError(ReproError):
    """A failure of the analysis harness itself (unreadable tree,
    unknown rule name, internal checker error) -- distinct from
    findings, which are ordinary results."""


@dataclass(frozen=True)
class Rule:
    """One house rule: a stable ID plus the rationale it encodes."""

    id: str
    name: str
    summary: str
    rationale: str


#: Every rule the subsystem knows, in reporting order.  The IDs are
#: grouped by family: FD* float determinism, LD* lock discipline,
#: WS* wire surface, BB* bench baselines, PG* pragma hygiene.
RULES: tuple[Rule, ...] = (
    Rule(
        "FD001",
        "builtin-sum-in-fold-path",
        "builtin sum() over values not provably integral in a fold path",
        "Builtin sum() folds left-to-right in iteration order; for floats "
        "that pins a rounding sequence that silently changes when the "
        "iterable's order or grouping changes.  Float folds must use "
        "math.fsum (exact) or numpy pairwise slice sums (the engine's "
        "bit-identity contract); integer folds are exempt.",
    ),
    Rule(
        "FD002",
        "fsum-outside-allowlist",
        "math.fsum call outside the allowlisted rollup sites",
        "fsum is exact, so answers produced through it cannot be "
        "reproduced by the sequential/pairwise folds the engine gates "
        "bit-identical.  It is allowed only where every execution path "
        "folds through it (the group-by rollup), never mixed into a "
        "path that must match a plain fold.",
    ),
    Rule(
        "FD003",
        "unordered-iteration-float-fold",
        "float accumulation iterating a set (hash order)",
        "Set iteration order depends on hashes and insertion history; "
        "accumulating floats over it makes the rounding sequence "
        "run-dependent.  Fold over a sorted or insertion-ordered "
        "sequence instead.",
    ),
    Rule(
        "LD001",
        "unlocked-inner-call",
        "public method calls an *_inner twin outside an RWLock section",
        "The *_inner methods assume the dataset RWLock is already held "
        "by their public caller; calling one unlocked races appends "
        "(torn reads of in-place array mutation).",
    ),
    Rule(
        "LD002",
        "nested-lock-acquisition",
        "underscore method (or nested section) re-acquires the RWLock",
        "RWLock is not re-entrant: a reader re-acquiring while a writer "
        "waits deadlocks (writer preference queues the second read "
        "behind the writer, which waits for the first read).  All "
        "acquisition stays in the outermost public entry points; "
        "sections stay flat.",
    ),
    Rule(
        "LD003",
        "inner-access-outside-dataset",
        "server/api caller reaches a Dataset _inner method or its lock",
        "Only dataset.py knows the lock discipline its _inner twins "
        "assume; an outside caller invoking one (or touching _rwlock "
        "directly) bypasses the single-writer model the serving tier "
        "is built on.",
    ),
    Rule(
        "WS001",
        "op-unknown-to-http-tier",
        "wire op dispatched in run_dict but unknown to server/http.py",
        "The HTTP tier must route (or explicitly document as routed "
        "through /query) every op the service dispatches; an op added "
        "only to run_dict is unreachable or undocumented over HTTP.",
    ),
    Rule(
        "WS002",
        "op-readme-drift",
        "wire op set and README-documented ops disagree",
        "The README is the wire contract clients read; an op missing "
        "there (or documented but no longer dispatched) is a silent "
        "protocol change.",
    ),
    Rule(
        "WS003",
        "route-readme-drift",
        "HTTP routes and README-documented routes disagree",
        "Every live route is documented and every documented route is "
        "live, so curl examples in the README never 404.",
    ),
    Rule(
        "WS004",
        "op-key-schema-gap",
        "management op key schema missing the envelope keys",
        "Every v2 management op validates its payload against a _*_KEYS "
        "tuple; the tuple must carry the envelope keys ('v', 'op', "
        "'dataset') or strict unknown-key checking rejects legal "
        "envelopes.",
    ),
    Rule(
        "WS005",
        "error-code-status-drift",
        "ERROR_CODES and the HTTP_STATUS table disagree",
        "Every API error code needs exactly one HTTP status (the status "
        "line is derived, never a second source of truth); a code "
        "missing from the table degrades to 500 and an orphan status "
        "entry is dead configuration.",
    ),
    Rule(
        "BB001",
        "scenario-without-baseline",
        "registered bench scenario has no checked-in BENCH_*.json",
        "The regression gate compares against repo-root baselines; a "
        "scenario without one is silently ungated.",
    ),
    Rule(
        "BB002",
        "orphan-baseline",
        "checked-in BENCH_*.json names no registered scenario",
        "An orphan baseline is dead weight that the compare step skips "
        "forever -- usually a renamed scenario whose old file was left "
        "behind.",
    ),
    Rule(
        "BB003",
        "invalid-baseline",
        "checked-in baseline fails the result schema (or names the wrong scenario)",
        "compare trusts the baseline's embedded thresholds and strict "
        "metrics; a schema-invalid or mislabelled file corrupts the "
        "gate instead of failing it.",
    ),
    Rule(
        "PG001",
        "pragma-without-reason",
        "repro-lint allow pragma carries no reason string",
        "The allowlist is a reviewable record of why each exception is "
        "safe; a bare allow[...] is a mute button, not a record.",
    ),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in RULES}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: repo-relative, forward slashes
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": RULES_BY_ID[self.rule].name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class SourceFile:
    """One parsed source file a checker walks."""

    path: Path  #: absolute
    relative: str  #: repo-relative, forward slashes
    text: str
    lines: list[str] = field(default_factory=list)
    _tree: ast.Module | None = None

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree


def load_source(root: Path, path: Path) -> SourceFile:
    """Read and wrap one file (checkers share the instance per run)."""
    text = path.read_text(encoding="utf-8")
    try:
        relative = path.relative_to(root).as_posix()
    except ValueError:
        relative = path.as_posix()
    return SourceFile(path=path, relative=relative, text=text, lines=text.splitlines())


def python_files(root: Path, package: str) -> list[Path]:
    """Sorted ``*.py`` files under ``<root>/src/repro/<package>``."""
    base = root / "src" / "repro" / package
    if not base.is_dir():
        return []
    return sorted(base.rglob("*.py"))


# -- the suppression pragma ---------------------------------------------------

_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*(.*)$")


def _pragma_on(line: str) -> tuple[set[str], str] | None:
    match = _PRAGMA.search(line)
    if match is None:
        return None
    rules = {token.strip() for token in match.group(1).split(",") if token.strip()}
    return rules, match.group(2).strip()


def pragma_findings(source: SourceFile) -> list[Finding]:
    """PG001 findings: every allow pragma in ``source`` must carry a
    reason (and name only known rules -- a typo'd ID suppresses
    nothing and should not pass silently)."""
    findings: list[Finding] = []
    for number, line in enumerate(source.lines, start=1):
        parsed = _pragma_on(line)
        if parsed is None:
            continue
        rules, reason = parsed
        if not reason:
            findings.append(
                Finding(
                    "PG001",
                    source.relative,
                    number,
                    line.index("#") + 1,
                    "allow pragma needs a reason: '# repro-lint: allow[<RULE>] <why this is safe>'",
                )
            )
        unknown = sorted(rule for rule in rules if rule not in RULES_BY_ID)
        if unknown:
            findings.append(
                Finding(
                    "PG001",
                    source.relative,
                    number,
                    line.index("#") + 1,
                    f"allow pragma names unknown rule(s) {unknown}",
                )
            )
    return findings


def is_allowed(source: SourceFile, rule: str, line: int) -> bool:
    """Whether a finding of ``rule`` at ``line`` is suppressed by an
    allow pragma on that line or the line directly above."""
    for number in (line, line - 1):
        if 1 <= number <= len(source.lines):
            parsed = _pragma_on(source.lines[number - 1])
            if parsed is not None and rule in parsed[0] and parsed[1]:
                return True
    return False


def filter_allowed(source: SourceFile, findings: list[Finding]) -> list[Finding]:
    """Drop findings suppressed by a (reasoned) allow pragma."""
    return [f for f in findings if not is_allowed(source, f.rule, f.line)]


# -- AST helpers shared by the checker families -------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains (None for anything else)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets (``self._rwlock.read`` for
    ``self._rwlock.read()``), or None for computed callees."""
    return dotted_name(node.func)


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
