"""WS: the wire-surface consistency family.

The v2.1 wire surface is defined in four places that must agree: the
``op`` dispatch in :meth:`GeoService.run_dict` (``api/service.py``),
the HTTP routes in ``server/http.py``, the ``HTTP_STATUS`` table in
``api/errors.py``, and the README's protocol documentation.  Adding an
op, a route, or an error code to one without the others used to be
caught only if a test happened to anticipate it; this checker
cross-references all four on every run:

* ``WS001`` -- an op dispatched in ``run_dict`` that ``server/http.py``
  neither routes (``/<op>``) nor mentions (the unified-``/query`` ops
  are documented in its module prose);
* ``WS002`` -- op set vs README drift, both directions;
* ``WS003`` -- route set vs README drift, both directions;
* ``WS004`` -- a management-op key schema (the ``_*_KEYS`` tuples)
  missing the envelope keys, or checking an op that is not dispatched;
* ``WS005`` -- ``ERROR_CODES`` vs ``HTTP_STATUS`` drift, both
  directions.

Everything is extracted statically (AST for the modules, regex over the
README), so the checker also works against a modified copy of any one
file -- which is exactly how the regression test pins it: introduce a
fake op into a temp copy of the dispatch and assert the missing
route/doc entries surface.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import (
    Finding,
    SourceFile,
    call_name,
    filter_allowed,
    load_source,
    sort_findings,
)

#: The default op a versioned payload without ``"op"`` resolves to; it
#: has no dispatch literal and is documented as the ``/query`` route.
DEFAULT_OP = "query"

#: Envelope keys every management-op schema must accept.
ENVELOPE_KEYS = ("v", "op", "dataset")

_README_OP = re.compile(r"\"op\"\s*:\s*\"(\w+)\"")
_README_ROUTE = re.compile(r"\b(GET|POST)\s+(/[a-z_]+)")


@dataclass
class WireFiles:
    """The four files the wire surface spans (override any of them to
    check a candidate copy)."""

    service: SourceFile
    http: SourceFile
    request: SourceFile
    errors: SourceFile
    readme_text: str
    readme_path: str = "README.md"

    @classmethod
    def from_root(cls, root: Path) -> "WireFiles":
        src = root / "src" / "repro"
        return cls(
            service=load_source(root, src / "api" / "service.py"),
            http=load_source(root, src / "server" / "http.py"),
            request=load_source(root, src / "api" / "request.py"),
            errors=load_source(root, src / "api" / "errors.py"),
            readme_text=(root / "README.md").read_text(encoding="utf-8"),
        )


# -- extraction ---------------------------------------------------------------


def dispatched_ops(service: SourceFile) -> dict[str, int]:
    """``op`` literals compared against in ``run_dict`` (op -> line),
    plus the implicit default op."""
    ops: dict[str, int] = {}
    for node in ast.walk(service.tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "run_dict"):
            continue
        for compare in ast.walk(node):
            if not isinstance(compare, ast.Compare):
                continue
            sides = [compare.left, *compare.comparators]
            names = {s.id for s in sides if isinstance(s, ast.Name)}
            if "op" not in names:
                continue
            for side in sides:
                if isinstance(side, ast.Constant) and isinstance(side.value, str):
                    ops.setdefault(side.value, compare.lineno)
        ops.setdefault(DEFAULT_OP, node.lineno)
    return ops


def http_routes(http: SourceFile) -> dict[tuple[str, str], int]:
    """Route literals handled in ``server/http.py``:
    ``(method, path) -> line``, taken from comparisons against the
    handler's ``path`` variable inside ``do_GET``/``do_POST``."""
    routes: dict[tuple[str, str], int] = {}
    for node in ast.walk(http.tree):
        if not isinstance(node, ast.FunctionDef) or node.name not in ("do_GET", "do_POST"):
            continue
        method = node.name.removeprefix("do_")
        for compare in ast.walk(node):
            if not isinstance(compare, ast.Compare):
                continue
            sides = [compare.left, *compare.comparators]
            if not any(isinstance(s, ast.Name) and s.id == "path" for s in sides):
                continue
            for side in sides:
                literals = (
                    list(side.elts) if isinstance(side, (ast.Tuple, ast.List)) else [side]
                )
                for literal in literals:
                    if (
                        isinstance(literal, ast.Constant)
                        and isinstance(literal.value, str)
                        and literal.value.startswith("/")
                        and len(literal.value) > 1
                    ):
                        routes.setdefault((method, literal.value), compare.lineno)
    return routes


def key_schemas(service: SourceFile) -> dict[str, tuple[int, tuple[str, ...]]]:
    """Class-level ``_*_KEYS`` tuples: name -> (line, keys)."""
    schemas: dict[str, tuple[int, tuple[str, ...]]] = {}
    for node in ast.walk(service.tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and re.fullmatch(r"_[A-Z_]+_KEYS", target.id)):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            keys = tuple(
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            )
            schemas[target.id] = (node.lineno, keys)
    return schemas


def schema_checked_ops(service: SourceFile) -> list[tuple[str, str, int]]:
    """``_check_op_payload(payload, "<op>", self._X_KEYS)`` call sites:
    ``(op, schema name, line)`` triples."""
    sites: list[tuple[str, str, int]] = []
    for node in ast.walk(service.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None or not name.endswith("_check_op_payload"):
            continue
        if len(node.args) < 3:
            continue
        op_arg, schema_arg = node.args[1], node.args[2]
        if (
            isinstance(op_arg, ast.Constant)
            and isinstance(op_arg.value, str)
            and isinstance(schema_arg, ast.Attribute)
        ):
            sites.append((op_arg.value, schema_arg.attr, node.lineno))
    return sites


def error_tables(errors: SourceFile) -> tuple[dict[str, int], dict[str, int], int, int]:
    """``(ERROR_CODES codes -> line, HTTP_STATUS codes -> line,
    ERROR_CODES line, HTTP_STATUS line)`` from ``api/errors.py``."""
    constants: dict[str, str] = {}
    codes: dict[str, int] = {}
    statuses: dict[str, int] = {}
    codes_line = statuses_line = 1

    def resolve(node: ast.AST) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return constants.get(node.id)
        return None

    for node in errors.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            constants[target.id] = node.value.value
        elif target.id == "ERROR_CODES" and isinstance(node.value, (ast.Tuple, ast.List)):
            codes_line = node.lineno
            for element in node.value.elts:
                code = resolve(element)
                if code is not None:
                    codes[code] = element.lineno
        elif target.id == "HTTP_STATUS" and isinstance(node.value, ast.Dict):
            statuses_line = node.lineno
            for key in node.value.keys:
                code = resolve(key) if key is not None else None
                if code is not None:
                    statuses[code] = key.lineno  # type: ignore[union-attr]
    return codes, statuses, codes_line, statuses_line


def readme_ops(text: str) -> dict[str, int]:
    ops: dict[str, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        for match in _README_OP.finditer(line):
            ops.setdefault(match.group(1), number)
    return ops


def readme_routes(text: str) -> dict[tuple[str, str], int]:
    routes: dict[tuple[str, str], int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        for match in _README_ROUTE.finditer(line):
            routes.setdefault((match.group(1), match.group(2)), number)
    return routes


# -- the cross-checks ---------------------------------------------------------


def check_files(files: WireFiles) -> list[Finding]:
    findings: list[Finding] = []
    ops = dispatched_ops(files.service)
    routes = http_routes(files.http)
    route_paths = {path for _, path in routes}
    documented_ops = readme_ops(files.readme_text)
    documented_routes = readme_routes(files.readme_text)

    # WS001: every dispatched op is reachable/documented at the HTTP tier.
    for op, line in sorted(ops.items()):
        if f"/{op}" in route_paths:
            continue
        if re.search(rf"\b{re.escape(op)}\b", files.http.text):
            continue
        findings.append(
            Finding(
                "WS001",
                files.service.relative,
                line,
                1,
                f"op {op!r} is dispatched in run_dict but server/http.py "
                "neither routes /"
                f"{op} nor documents it as a unified-/query op",
            )
        )

    # WS002: op set vs README, both directions.
    for op, line in sorted(ops.items()):
        if op == DEFAULT_OP:
            continue  # the default op is the undecorated query payload
        if op not in documented_ops:
            findings.append(
                Finding(
                    "WS002",
                    files.service.relative,
                    line,
                    1,
                    f"op {op!r} is dispatched in run_dict but the README never "
                    f'documents a {{"op": "{op}"}} payload',
                )
            )
    for op, line in sorted(documented_ops.items()):
        if op not in ops:
            findings.append(
                Finding(
                    "WS002",
                    files.readme_path,
                    line,
                    1,
                    f'README documents {{"op": "{op}"}} but run_dict does not '
                    "dispatch it",
                )
            )

    # WS003: route set vs README, both directions.
    for (method, path), line in sorted(routes.items()):
        if (method, path) not in documented_routes:
            findings.append(
                Finding(
                    "WS003",
                    files.http.relative,
                    line,
                    1,
                    f"route {method} {path} is handled but the README never "
                    "documents it",
                )
            )
    for (method, path), line in sorted(documented_routes.items()):
        if (method, path) not in routes:
            findings.append(
                Finding(
                    "WS003",
                    files.readme_path,
                    line,
                    1,
                    f"README documents {method} {path} but server/http.py does "
                    "not handle it",
                )
            )

    # WS004: management-op key schemas.
    schemas = key_schemas(files.service)
    for op, schema_name, line in schema_checked_ops(files.service):
        if schema_name not in schemas:
            findings.append(
                Finding(
                    "WS004",
                    files.service.relative,
                    line,
                    1,
                    f"op {op!r} validates against {schema_name}, which is not a "
                    "class-level _*_KEYS tuple",
                )
            )
            continue
        schema_line, keys = schemas[schema_name]
        missing = [key for key in ENVELOPE_KEYS if key not in keys]
        if missing:
            findings.append(
                Finding(
                    "WS004",
                    files.service.relative,
                    schema_line,
                    1,
                    f"{schema_name} is missing envelope key(s) {missing}; strict "
                    "unknown-key checking would reject legal envelopes",
                )
            )
        if op not in ops:
            findings.append(
                Finding(
                    "WS004",
                    files.service.relative,
                    line,
                    1,
                    f"{schema_name} validates op {op!r}, which run_dict never "
                    "dispatches",
                )
            )
    request_schemas = key_schemas(files.request)
    for name, (line, keys) in sorted(request_schemas.items()):
        if name != "_REQUEST_KEYS":
            continue
        missing = [key for key in ENVELOPE_KEYS if key not in keys]
        if missing:
            findings.append(
                Finding(
                    "WS004",
                    files.request.relative,
                    line,
                    1,
                    f"_REQUEST_KEYS is missing envelope key(s) {missing}",
                )
            )

    # WS005: error-code/status drift.
    codes, statuses, _, statuses_line = error_tables(files.errors)
    for code, line in sorted(codes.items()):
        if code not in statuses:
            findings.append(
                Finding(
                    "WS005",
                    files.errors.relative,
                    line,
                    1,
                    f"error code {code!r} has no HTTP_STATUS entry (would "
                    "degrade to 500)",
                )
            )
    for code, line in sorted(statuses.items()):
        if code not in codes:
            findings.append(
                Finding(
                    "WS005",
                    files.errors.relative,
                    line if line else statuses_line,
                    1,
                    f"HTTP_STATUS maps {code!r}, which is not in ERROR_CODES",
                )
            )

    for source in (files.service, files.http, files.request, files.errors):
        findings = [
            f
            for f in findings
            if f.path != source.relative
            or f in filter_allowed(source, [f])
        ]
    return sort_findings(findings)


def check(root: Path) -> list[Finding]:
    """Run the WS family against the live tree under ``root``."""
    return check_files(WireFiles.from_root(root))
