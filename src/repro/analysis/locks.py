"""LD: the lock-discipline family.

The serving tier's concurrency model is a single flat readers-writer
section per dataset (``util/sync.py``): the :class:`RWLock` has writer
preference and is *not* re-entrant, so a reader re-acquiring while a
writer waits deadlocks.  The convention that keeps that safe -- all
acquisition at the outermost public ``Dataset`` entry points, the
``_*_inner`` twins assume the lock and never re-acquire, nobody outside
``dataset.py`` calls a twin directly -- was prose in docstrings; this
checker makes it machine-checked:

* ``LD001`` -- a public ``Dataset`` method calls an ``*_inner`` twin
  lexically outside a ``with self._rwlock.read()/write()`` section;
* ``LD002`` -- an underscore method acquires the RWLock (twins run
  with it held), or any function nests two sections on the same lock;
* ``LD003`` -- a module in ``api/`` or ``server/`` other than
  ``dataset.py`` reaches an ``*_inner`` method or a ``_rwlock``
  attribute directly.

The checks are lexical (AST nesting), which is exactly the shape the
convention demands: lock sections that are only *dynamically* flat are
what the runtime detector (:mod:`repro.analysis.runtime`) exists for.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import (
    Finding,
    SourceFile,
    call_name,
    dotted_name,
    filter_allowed,
    load_source,
    python_files,
)

#: The module that owns the lock discipline.
DATASET_MODULE = "repro/api/dataset.py"

#: Packages whose callers must stay outside the discipline.
CALLER_PACKAGES = ("api", "server")


def _rwlock_receiver(item: ast.withitem) -> str | None:
    """The lock expression of ``with <recv>.read()/write():`` items
    (None for anything that is not an RWLock section)."""
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return None
    name = call_name(expr)
    if name is None or "." not in name:
        return None
    receiver, method = name.rsplit(".", 1)
    if method not in ("read", "write"):
        return None
    leaf = receiver.rsplit(".", 1)[-1]
    if "lock" not in leaf.lower():
        return None
    return receiver


def _is_inner_call(node: ast.Call) -> str | None:
    """The dotted callee name when ``node`` invokes an ``*_inner``
    method (``self._query_inner``, ``self._parent._view_inner``)."""
    name = call_name(node)
    if name is not None and name.rsplit(".", 1)[-1].endswith("_inner"):
        return name
    return None


class _DatasetVisitor(ast.NodeVisitor):
    """LD001/LD002 over the dataset module itself."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.findings: list[Finding] = []
        self._method: str | None = None  # enclosing class-level function
        self._in_class = False
        self._lock_depth = 0
        self._section_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        was_in_class = self._in_class
        self._in_class = True
        self.generic_visit(node)
        self._in_class = was_in_class

    def _visit_function(self, node: ast.AST) -> None:
        if self._in_class and self._method is None:
            self._method = node.name  # type: ignore[attr-defined]
            outer_depth = self._lock_depth
            self._lock_depth = 0
            self.generic_visit(node)
            self._lock_depth = outer_depth
            self._method = None
        else:
            self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        receivers = [r for item in node.items if (r := _rwlock_receiver(item)) is not None]
        for receiver in receivers:
            if receiver in self._section_stack:
                self.findings.append(
                    Finding(
                        "LD002",
                        self.source.relative,
                        node.lineno,
                        node.col_offset + 1,
                        f"nested section on {receiver} inside an enclosing "
                        "read()/write() section; RWLock is not re-entrant",
                    )
                )
            if (
                self._method is not None
                and self._method.startswith("_")
                and not self._method.startswith("__")
            ):
                self.findings.append(
                    Finding(
                        "LD002",
                        self.source.relative,
                        node.lineno,
                        node.col_offset + 1,
                        f"underscore method {self._method}() acquires {receiver}; "
                        "_inner twins run with the lock already held -- "
                        "acquisition belongs in the outermost public entry point",
                    )
                )
        self._lock_depth += len(receivers)
        self._section_stack.extend(receivers)
        self.generic_visit(node)
        del self._section_stack[len(self._section_stack) - len(receivers):]
        self._lock_depth -= len(receivers)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None and name.rsplit(".", 1)[-1].startswith("acquire_"):
            receiver = name.rsplit(".", 1)[0].rsplit(".", 1)[-1]
            if "lock" in receiver.lower() and self._method is not None:
                self.findings.append(
                    Finding(
                        "LD002",
                        self.source.relative,
                        node.lineno,
                        node.col_offset + 1,
                        f"bare {name}() call; use the read()/write() context "
                        "managers so sections stay visibly flat",
                    )
                )
        inner = _is_inner_call(node)
        if (
            inner is not None
            and self._method is not None
            and not self._method.startswith("_")
            and self._lock_depth == 0
        ):
            self.findings.append(
                Finding(
                    "LD001",
                    self.source.relative,
                    node.lineno,
                    node.col_offset + 1,
                    f"public method {self._method}() calls {inner}() outside a "
                    "with self._rwlock.read()/write() section; _inner twins "
                    "assume the lock is held",
                )
            )
        self.generic_visit(node)


class _CallerVisitor(ast.NodeVisitor):
    """LD003 over api/server modules other than dataset.py."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.findings: list[Finding] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.endswith("_inner") or node.attr == "_rwlock":
            name = dotted_name(node) or node.attr
            self.findings.append(
                Finding(
                    "LD003",
                    self.source.relative,
                    node.lineno,
                    node.col_offset + 1,
                    f"direct access to {name}; the lock discipline lives in "
                    "dataset.py -- go through the public Dataset methods",
                )
            )
        self.generic_visit(node)


def check_dataset_source(source: SourceFile) -> list[Finding]:
    visitor = _DatasetVisitor(source)
    visitor.visit(source.tree)
    return filter_allowed(source, visitor.findings)


def check_caller_source(source: SourceFile) -> list[Finding]:
    visitor = _CallerVisitor(source)
    visitor.visit(source.tree)
    return filter_allowed(source, visitor.findings)


def check(root: Path) -> list[Finding]:
    """Run the LD family over ``api/`` and ``server/`` under ``root``."""
    findings: list[Finding] = []
    for package in CALLER_PACKAGES:
        for path in python_files(root, package):
            source = load_source(root, path)
            if source.relative.endswith(DATASET_MODULE):
                findings.extend(check_dataset_source(source))
            else:
                findings.extend(check_caller_source(source))
    return findings
