"""Tests for the utility modules and the public API surface."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.util.rng import DEFAULT_SEED, derive_rng, spawn_rngs
from repro.util.tables import format_series, format_table
from repro.util.timing import Stopwatch, time_call


class TestRng:
    def test_same_scope_same_stream(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(1, "x").random(5)
        assert np.array_equal(a, b)

    def test_different_scope_different_stream(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(1, "y").random(5)
        assert not np.array_equal(a, b)

    def test_none_seed_uses_default(self):
        a = derive_rng(None, "x").random(3)
        b = derive_rng(DEFAULT_SEED, "x").random(3)
        assert np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(2, 3, "workers")
        assert len(rngs) == 3
        draws = [generator.random() for generator in rngs]
        assert len(set(draws)) == 3

    def test_int_scope_parts(self):
        a = derive_rng(1, "x", 5).random(3)
        b = derive_rng(1, "x", 6).random(3)
        assert not np.array_equal(a, b)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.phase("a"):
            time.sleep(0.01)
        with watch.phase("a"):
            pass
        with watch.phase("b"):
            pass
        assert watch.seconds("a") >= 0.01
        assert watch.millis("a") == watch.seconds("a") * 1e3
        assert watch.total_seconds() >= watch.seconds("a")
        assert watch.seconds("missing") == 0.0

    def test_time_call_returns_best_and_result(self):
        seconds, result = time_call(lambda: 42, repeats=3)
        assert result == 42
        assert seconds >= 0.0

    def test_time_call_validates_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeats=0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22222.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "22,222" in text

    def test_format_table_title_and_nan(self):
        text = format_table(["x"], [[float("nan")]], title="T")
        assert text.startswith("T\n")
        assert "nan" in text

    def test_format_series(self):
        text = format_series("runtime", [1, 2], [0.5, 100.0])
        assert text.startswith("runtime:")
        assert "1:0.5000" in text


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_error_hierarchy(self):
        from repro import BuildError, CellError, GeometryError, QueryError, ReproError, SchemaError

        for exc in (GeometryError, CellError, SchemaError, QueryError, BuildError):
            assert issubclass(exc, ReproError)

    def test_quickstart_docstring_flow(self):
        """The module docstring example must keep working."""
        import numpy as np

        from repro import EARTH, AggSpec, GeoBlock, PointTable, Polygon, Schema, extract

        table = PointTable(
            Schema(["fare"]),
            xs=np.array([-73.99, -73.97]),
            ys=np.array([40.73, 40.75]),
            columns={"fare": np.array([12.5, 9.0])},
        )
        base = extract(table, EARTH)
        block = GeoBlock.build(base, level=17)
        region = Polygon([(-74.0, 40.7), (-73.9, 40.7), (-73.9, 40.8), (-74.0, 40.8)])
        result = block.select(region, [AggSpec("count"), AggSpec("sum", "fare")])
        assert result.count == 2
        assert result["sum(fare)"] == pytest.approx(21.5)
