"""The v2.1 wire surface: materialize / views / drop_view ops, the
fluent terminal, and their error codes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Dataset, GeoService, MaterializeRequest, TieredCache, region_to_geojson
from repro.cells import EARTH
from repro.geometry import Polygon
from repro.storage import PointTable, Schema, extract

LEVEL = 14

REGION = Polygon([(-74.05, 40.65), (-73.85, 40.63), (-73.82, 40.80), (-74.02, 40.82)])


def make_base(count=6000, seed=55):
    rng = np.random.default_rng(seed)
    table = PointTable(
        Schema(["fare", "distance"]),
        rng.normal(-73.95, 0.04, count),
        rng.normal(40.75, 0.03, count),
        {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
    )
    return extract(table, EARTH)


def make_service():
    service = GeoService(cache=TieredCache())
    service.register(
        "taxi", Dataset.build(make_base(), LEVEL, "geoblock", name="taxi")
    )
    return service


def wire(op=None, **extra) -> dict:
    payload = {
        "v": 2,
        "dataset": "taxi",
        "region": region_to_geojson(REGION),
        "aggregates": ["count", "avg:fare"],
    }
    if op is not None:
        payload["op"] = op
    payload.update(extra)
    return json.loads(json.dumps(payload))


class TestMaterializeOp:
    def test_materialize_then_query_serves_from_view(self):
        service = make_service()
        envelope = service.run_dict(wire(op="materialize", name="hot-soho"))
        assert envelope["ok"]
        assert envelope["data"]["name"] == "hot-soho"
        assert envelope["data"]["kind"] == "materialized"
        assert envelope["data"]["pinned"] is True
        answer = service.run_dict(wire())
        assert answer["stats"]["mv"]["cached"] == 1

    def test_duplicate_name_conflicts(self):
        service = make_service()
        assert service.run_dict(wire(op="materialize", name="hot"))["ok"]
        envelope = service.run_dict(
            {
                "v": 2,
                "op": "materialize",
                "dataset": "taxi",
                "region": {"bbox": [-74.0, 40.7, -73.9, 40.8]},
                "name": "hot",
            }
        )
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "duplicate_view"

    def test_duplicate_query_conflicts(self):
        service = make_service()
        assert service.run_dict(wire(op="materialize"))["ok"]
        envelope = service.run_dict(wire(op="materialize"))
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "duplicate_view"

    def test_grouped_rejected(self):
        service = make_service()
        payload = {
            "v": 2,
            "op": "materialize",
            "dataset": "taxi",
            "group_by": [{"name": "a", "region": {"bbox": [-74.0, 40.7, -73.9, 40.8]}}],
        }
        envelope = service.run_dict(payload)
        assert envelope["ok"] is False
        # group_by is not part of the materialize shape at all.
        assert envelope["error"]["code"] == "bad_request"

    def test_scalar_mode_rejected(self):
        service = make_service()
        envelope = service.run_dict(
            wire(op="materialize", hints={"mode": "scalar"})
        )
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "unsupported_op"

    def test_v1_rejected(self):
        service = make_service()
        payload = wire(op="materialize")
        del payload["v"]
        envelope = service.run_dict(payload)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "bad_request"

    def test_request_roundtrip(self):
        parsed = MaterializeRequest.from_dict(wire(op="materialize", name="hot"))
        assert parsed.name == "hot"
        assert parsed.dataset == "taxi"
        again = MaterializeRequest.from_dict(parsed.to_dict())
        assert again.name == "hot"
        assert again.query.aggregates == parsed.query.aggregates


class TestViewsOp:
    def test_views_lists_materialized_and_filtered(self):
        service = make_service()
        service.run_dict(wire(op="materialize", name="hot"))
        where = {"col": "fare", "op": ">=", "value": 10}
        service.run_dict(wire(where=where))  # builds the filtered view
        envelope = service.run_dict({"v": 2, "op": "views", "dataset": "taxi"})
        assert envelope["ok"]
        data = envelope["data"]
        assert data["dataset"] == "taxi"
        names = [view["name"] for view in data["materialized"]]
        assert names == ["hot"]
        assert data["materialized"][0]["where"] is None
        assert data["materialized"][0]["stale"] is False
        assert [view["where"] for view in data["filtered"]] == ["fare >= 10.0"]

    def test_views_shows_staleness_and_hits(self):
        service = make_service()
        service.run_dict(wire(op="materialize", name="hot"))
        service.run_dict(wire())
        rows = [{"x": -73.95, "y": 40.75, "fare": 9.0, "distance": 1.0}]
        service.run_dict({"v": 2, "op": "append", "dataset": "taxi", "rows": rows})
        data = service.run_dict({"v": 2, "op": "views", "dataset": "taxi"})["data"]
        view = data["materialized"][0]
        assert view["hits"] == 1
        assert view["stale"] is False  # the append refreshed it in lockstep
        assert view["version"] == data["version"] == 2
        assert view["delta_rows"] >= 0

    def test_views_requires_v2(self):
        service = make_service()
        envelope = service.run_dict({"op": "views", "dataset": "taxi"})
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "bad_request"


class TestDropViewOp:
    def test_drop_then_unknown(self):
        service = make_service()
        service.run_dict(wire(op="materialize", name="hot"))
        envelope = service.run_dict(
            {"v": 2, "op": "drop_view", "dataset": "taxi", "name": "hot"}
        )
        assert envelope["ok"]
        assert envelope["data"]["dropped"] == "hot"
        again = service.run_dict(
            {"v": 2, "op": "drop_view", "dataset": "taxi", "name": "hot"}
        )
        assert again["ok"] is False
        assert again["error"]["code"] == "unknown_view"

    def test_drop_needs_name(self):
        service = make_service()
        envelope = service.run_dict({"v": 2, "op": "drop_view", "dataset": "taxi"})
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "bad_request"

    def test_drop_reaches_filtered_view_stores(self):
        service = make_service()
        where = {"col": "fare", "op": ">=", "value": 10}
        service.run_dict(wire(op="materialize", where=where, name="hot-filtered"))
        envelope = service.run_dict(
            {"v": 2, "op": "drop_view", "dataset": "taxi", "name": "hot-filtered"}
        )
        assert envelope["ok"]
        assert envelope["data"]["dropped"] == "hot-filtered"


class TestFluentTerminal:
    def test_fluent_materialize(self):
        dataset = Dataset.build(
            make_base(), LEVEL, "geoblock", name="taxi", cache=TieredCache()
        )
        info = dataset.over(REGION).agg("count", "avg:fare").materialize("hot")
        assert info["name"] == "hot"
        assert info["pinned"] is True
        served = dataset.over(REGION).agg("count", "avg:fare").run()
        assert served.stats.mv_cached == 1

    def test_fluent_grouped_rejected(self):
        from repro.api import ApiError

        dataset = Dataset.build(
            make_base(), LEVEL, "geoblock", name="taxi", cache=TieredCache()
        )
        features = [{"name": "a", "region": {"bbox": [-74.0, 40.7, -73.9, 40.8]}}]
        with pytest.raises(ApiError) as caught:
            dataset.group_by(features).agg("count").materialize()
        assert caught.value.code == "unsupported_op"


class TestServiceStats:
    def test_mv_block_counts_admissions_and_refreshes(self):
        service = make_service()
        service.run_dict(wire(op="materialize", name="hot"))
        service.run_dict(wire())
        rows = [{"x": -73.95, "y": 40.75, "fare": 9.0, "distance": 1.0}]
        service.run_dict({"v": 2, "op": "append", "dataset": "taxi", "rows": rows})
        service.run_dict(wire())
        stats = service.stats()
        assert stats["mv"]["views"] == 1
        assert stats["mv"]["pinned"] == 1
        assert stats["mv"]["admissions"] == 1
        assert stats["mv"]["hits"] == 2
        assert stats["mv"]["incremental_refreshes"] + stats["mv"]["full_refreshes"] >= 1
        assert stats["datasets"]["taxi"]["materialized"] == 1
