"""The tentpole gate: incremental MV refresh is bit-identical to a
cold rebuild, on every block kind, under single and repeated appends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset, QueryRequest, TieredCache
from repro.cells import EARTH
from repro.core import CachePolicy
from repro.geometry import Polygon
from repro.storage import PointTable, Schema, extract

LEVEL = 14

AGGS = ("count", "sum:fare", "min:fare", "max:distance", "avg:distance")

REGION = Polygon([(-74.05, 40.65), (-73.85, 40.63), (-73.82, 40.80), (-74.02, 40.82)])

#: A region far outside every appended point (delta == 0 refresh path).
FAR_REGION = Polygon.regular(-73.60, 41.05, 0.02, 6)


def make_base(count=8000, seed=55):
    rng = np.random.default_rng(seed)
    table = PointTable(
        Schema(["fare", "distance"]),
        rng.normal(-73.95, 0.04, count),
        rng.normal(40.75, 0.03, count),
        {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
    )
    return extract(table, EARTH)


def make_rows(count=60, seed=7):
    rng = np.random.default_rng(seed)
    return [
        {
            "x": float(x),
            "y": float(y),
            "fare": float(fare),
            "distance": float(distance),
        }
        for x, y, fare, distance in zip(
            rng.normal(-73.93, 0.06, count),
            rng.normal(40.74, 0.05, count),
            rng.gamma(3.0, 4.0, count),
            rng.gamma(2.0, 2.0, count),
        )
    ]


def rebuilt_base(base, rows):
    table = base.table
    xs = np.concatenate([table.xs, [row["x"] for row in rows]])
    ys = np.concatenate([table.ys, [row["y"] for row in rows]])
    columns = {
        name: np.concatenate([table.column(name), [row[name] for row in rows]])
        for name in table.schema.names
    }
    return extract(PointTable(table.schema, xs, ys, columns), EARTH)


def build_dataset(base, kind, **kwargs):
    if kind == "adaptive":
        kwargs.setdefault("policy", CachePolicy(threshold=0.5))
    elif kind == "sharded":
        kwargs.setdefault("shard_level", 11)
    kwargs.setdefault("cache", TieredCache())
    return Dataset.build(base, LEVEL, kind, name="taxi", **kwargs)


def request(region=REGION, **kwargs) -> QueryRequest:
    kwargs.setdefault("aggregates", AGGS)
    return QueryRequest(region=region, dataset="taxi", **kwargs)


def cold_answer(dataset, req):
    """Fresh engine execution on the dataset's *current* arrays -- the
    cold rebuild the MV refresh is gated bit-identical against."""
    block = dataset.block
    if req.count_only:
        return {}, block.count(req.target)
    plan = block.plan(req.target)
    result = block.executor.select(
        plan, list(req.aggregates), mode=req.mode or block.query_mode
    )
    return result.values, result.count


def assert_bit_identical(response, values, count) -> None:
    assert response.count == count
    assert set(response.values) == set(values)
    for key, want in values.items():
        got = response.values[key]
        # Byte-level equality: NaN-safe and stricter than ==.
        assert np.float64(got).tobytes() == np.float64(want).tobytes(), key


@pytest.fixture(params=["geoblock", "sharded", "adaptive"])
def kind(request) -> str:
    return request.param


class TestRefreshParity:
    def test_single_append(self, kind):
        dataset = build_dataset(make_base(), kind)
        req = request()
        dataset.materialize(req, name="hot")
        dataset.append(make_rows())
        served = dataset.query(req)
        assert served.stats.mv_cached == 1
        assert served.stats.result_cached == 0  # version bump missed the tier
        assert_bit_identical(served, *cold_answer(dataset, req))

    def test_repeated_appends(self, kind):
        dataset = build_dataset(make_base(), kind)
        req = request()
        dataset.materialize(req, name="hot")
        for seed in (7, 11, 13):
            dataset.append(make_rows(seed=seed))
            served = dataset.query(req)
            assert served.stats.mv_cached == 1
            assert_bit_identical(served, *cold_answer(dataset, req))

    def test_count_only(self, kind):
        dataset = build_dataset(make_base(), kind)
        req = request(count_only=True, aggregates=())
        dataset.materialize(req, name="hot-count")
        dataset.append(make_rows())
        served = dataset.query(req)
        assert served.stats.mv_cached == 1
        assert served.count == dataset.block.count(req.target)

    def test_append_outside_covering_restamps_only(self, kind):
        """Rows that land in no covering cell leave the stored records
        and answer byte-stable (the delta == 0 fast path) while the
        view's version still advances."""
        dataset = build_dataset(make_base(), kind)
        req = request(region=FAR_REGION)
        info = dataset.materialize(req, name="far")
        before = dict(dataset.query(req).values)
        dataset.append(make_rows())
        view = dataset.materialized.views()[0]
        assert view.refreshed_version == dataset.version
        assert view.delta_rows == 0
        served = dataset.query(req)
        assert served.stats.mv_cached == 1
        assert_bit_identical(served, before, served.count)
        assert_bit_identical(served, *cold_answer(dataset, req))
        assert info["name"] == "far"

    def test_parity_against_rebuilt_from_scratch(self, kind):
        """Strongest form: the MV answer after appends equals a dataset
        rebuilt from the concatenated base -- not just a re-execution
        over the appended arrays."""
        base = make_base()
        rows = make_rows()
        dataset = build_dataset(base, kind)
        req = request()
        dataset.materialize(req, name="hot")
        dataset.append(rows)
        served = dataset.query(req)
        assert served.stats.mv_cached == 1
        rebuilt = build_dataset(rebuilt_base(base, rows), kind)
        assert_bit_identical(served, *cold_answer(rebuilt, req))

    def test_trained_trie_refreshes_by_full_reexecution(self):
        """An adaptive dataset with a trained trie cannot refold stored
        records bit-identically (trie partial hits group differently),
        so the refresh re-executes -- and still matches cold."""
        dataset = build_dataset(make_base(), "adaptive")
        req = request()
        # Record statistics on the handle directly (the Dataset caches
        # would short-circuit repeats without recording).
        for _ in range(4):
            dataset.handle.select(req.target, list(req.aggregates))
        dataset.handle.adapt()
        assert dataset.handle.trie is not None
        dataset.materialize(req, name="hot")
        dataset.append(make_rows())
        view = dataset.materialized.views()[0]
        assert view.full_refreshes == 1
        served = dataset.query(req)
        assert served.stats.mv_cached == 1
        want = dataset.handle.select(req.target, list(req.aggregates))
        assert served.count == want.count
        for key, value in want.values.items():
            assert np.float64(served.values[key]).tobytes() == np.float64(value).tobytes()


class TestFilteredViewRefresh:
    WHERE = {"col": "fare", "op": ">=", "value": 10}

    def test_matching_appends_refresh_the_views_mv(self, kind):
        dataset = build_dataset(make_base(), kind)
        req = request(where=self.WHERE)
        dataset.materialize(req, name="hot-filtered")
        dataset.append(make_rows())
        served = dataset.query(req)
        assert served.stats.mv_cached == 1
        view = dataset.view(self.WHERE)
        assert_bit_identical(served, *cold_answer(view, request()))

    def test_non_matching_appends_leave_answer_stable(self, kind):
        """Appended rows the predicate excludes never reach the filtered
        view's block, so its MV restamps without changing a byte."""
        dataset = build_dataset(make_base(), kind)
        req = request(where=self.WHERE)
        dataset.materialize(req, name="hot-filtered")
        before = dict(dataset.query(req).values)
        rows = [dict(row, fare=1.0) for row in make_rows()]  # all below 10
        dataset.append(rows)
        served = dataset.query(req)
        assert served.stats.mv_cached == 1
        assert served.version == dataset.version
        assert_bit_identical(served, before, served.count)
