"""MV sidecar persistence: round-trip, warm restart, stamp guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset, QueryRequest, TieredCache
from repro.cells import EARTH
from repro.core import CachePolicy
from repro.geometry import Polygon
from repro.materialize import sidecar_path
from repro.storage import PointTable, Schema, extract

LEVEL = 14

AGGS = ("count", "sum:fare", "min:fare", "avg:distance")

REGION = Polygon([(-74.05, 40.65), (-73.85, 40.63), (-73.82, 40.80), (-74.02, 40.82)])


def make_base(count=6000, seed=55):
    rng = np.random.default_rng(seed)
    table = PointTable(
        Schema(["fare", "distance"]),
        rng.normal(-73.95, 0.04, count),
        rng.normal(40.75, 0.03, count),
        {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
    )
    return extract(table, EARTH)


def build_dataset(kind="geoblock", seed=55, **kwargs):
    if kind == "adaptive":
        kwargs.setdefault("policy", CachePolicy(threshold=0.5))
    elif kind == "sharded":
        kwargs.setdefault("shard_level", 11)
    kwargs.setdefault("cache", TieredCache())
    return Dataset.build(make_base(seed=seed), LEVEL, kind, name="taxi", **kwargs)


def request(**kwargs) -> QueryRequest:
    kwargs.setdefault("aggregates", AGGS)
    return QueryRequest(region=REGION, dataset="taxi", **kwargs)


@pytest.fixture(params=["geoblock", "sharded", "adaptive"])
def kind(request) -> str:
    return request.param


class TestRoundTrip:
    def test_views_survive_save_open_bit_identically(self, kind, tmp_path):
        dataset = build_dataset(kind)
        dataset.materialize(request(), name="hot")
        dataset.materialize(request(count_only=True, aggregates=()), name="hot-count")
        want = dataset.query(request())
        path = tmp_path / "taxi.npz"
        dataset.save(path)
        assert sidecar_path(path).exists()

        reopened = Dataset.open(path, name="taxi")
        assert len(reopened.materialized) == 2
        served = reopened.query(request())
        assert served.stats.mv_cached == 1
        assert served.count == want.count
        for key, value in want.values.items():
            assert np.float64(served.values[key]).tobytes() == np.float64(value).tobytes()
        count_served = reopened.query(request(count_only=True, aggregates=()))
        assert count_served.stats.mv_cached == 1
        assert count_served.count == want.count

    def test_pinned_and_hits_survive(self, tmp_path):
        dataset = build_dataset()
        dataset.materialize(request(), name="hot")
        dataset.query(request())
        dataset.query(request())
        path = tmp_path / "taxi.npz"
        dataset.save(path)
        view = Dataset.open(path).materialized.views()[0]
        assert view.name == "hot"
        assert view.pinned
        assert view.hits == 2

    def test_refresh_still_exact_after_reopen(self, kind, tmp_path):
        """The restored records must keep refreshing bit-identically --
        the JSON/npz round-trip preserved every byte."""
        dataset = build_dataset(kind)
        dataset.materialize(request(), name="hot")
        path = tmp_path / "taxi.npz"
        dataset.save(path)
        reopened = Dataset.open(path, name="taxi")
        rng = np.random.default_rng(3)
        rows = [
            {
                "x": float(x),
                "y": float(y),
                "fare": float(fare),
                "distance": float(distance),
            }
            for x, y, fare, distance in zip(
                rng.normal(-73.93, 0.05, 40),
                rng.normal(40.74, 0.05, 40),
                rng.gamma(3.0, 4.0, 40),
                rng.gamma(2.0, 2.0, 40),
            )
        ]
        reopened.append(rows)
        served = reopened.query(request())
        assert served.stats.mv_cached == 1
        block = reopened.block
        cold = block.executor.select(
            block.plan(request().target), list(request().aggregates), mode=block.query_mode
        )
        assert served.count == cold.count
        for key, value in cold.values.items():
            assert np.float64(served.values[key]).tobytes() == np.float64(value).tobytes()


class TestSidecarGuards:
    def test_empty_store_removes_stale_sidecar(self, tmp_path):
        dataset = build_dataset()
        dataset.materialize(request(), name="hot")
        path = tmp_path / "taxi.npz"
        dataset.save(path)
        assert sidecar_path(path).exists()
        dataset.drop_view("hot")
        dataset.save(path)
        assert not sidecar_path(path).exists()

    def test_content_stamp_mismatch_yields_empty_store(self, tmp_path):
        from repro.core.serialize import save

        dataset = build_dataset(seed=55)
        dataset.materialize(request(), name="hot")
        path = tmp_path / "taxi.npz"
        dataset.save(path)
        # Rebuild the block file out-of-band from different data: the
        # sidecar must refuse to serve answers for it.
        other = build_dataset(seed=77)
        save(other.handle, path)
        reopened = Dataset.open(path)
        assert len(reopened.materialized) == 0

    def test_missing_sidecar_is_fine(self, tmp_path):
        dataset = build_dataset()
        path = tmp_path / "taxi.npz"
        dataset.save(path)
        assert not sidecar_path(path).exists()
        assert len(Dataset.open(path).materialized) == 0
