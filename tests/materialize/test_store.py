"""Admission-policy and store-bookkeeping unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset, QueryRequest, TieredCache
from repro.cells import EARTH
from repro.engine.executor import QueryResult
from repro.geometry import Polygon
from repro.materialize import MaterializedStore, MaterializedView, QueryLog
from repro.storage import PointTable, Schema, extract

LEVEL = 14

REGION = Polygon([(-74.05, 40.65), (-73.85, 40.63), (-73.82, 40.80), (-74.02, 40.82)])


def make_base(count=4000, seed=55):
    rng = np.random.default_rng(seed)
    table = PointTable(
        Schema(["fare", "distance"]),
        rng.normal(-73.95, 0.04, count),
        rng.normal(40.75, 0.03, count),
        {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
    )
    return extract(table, EARTH)


def make_dataset(**kwargs):
    kwargs.setdefault("cache", TieredCache())
    return Dataset.build(make_base(), LEVEL, "geoblock", name="taxi", **kwargs)


def stub_view(name, key, pinned=False):
    from repro.cells.union import CellUnion

    return MaterializedView(
        name=name,
        region=REGION,
        aggs=(),
        mode=None,
        trie_hint=False,
        count_only=True,
        key=key,
        covering=CellUnion(np.asarray([3], dtype=np.int64)),
        records=None,
        result=QueryResult(values={}, count=0),
        version=1,
        pinned=pinned,
    )


class TestQueryLog:
    def test_threshold_crossing(self):
        log = QueryLog(threshold=3)
        assert log.observe("k") is False
        assert log.observe("k") is False
        assert log.observe("k") is True
        # Admission retires the entry: the count restarts.
        assert log.observe("k") is False

    def test_capacity_evicts_least_recent(self):
        log = QueryLog(capacity=2, threshold=3)
        log.observe("a")
        log.observe("b")
        log.observe("c")  # evicts "a"
        log.observe("a")
        log.observe("a")
        assert log.observe("a") is True  # re-observed from scratch: 3 needed

    def test_forget(self):
        log = QueryLog(threshold=2)
        log.observe("k")
        log.forget("k")
        assert log.observe("k") is False


class TestStoreBookkeeping:
    def test_duplicate_key_and_name_raise(self):
        store = MaterializedStore()
        store.admit(stub_view("a", key=("k",)))
        with pytest.raises(KeyError):
            store.admit(stub_view("b", key=("k",)))
        with pytest.raises(KeyError):
            store.admit(stub_view("a", key=("other",)))

    def test_eviction_skips_pinned(self):
        store = MaterializedStore(max_views=2)
        store.admit(stub_view("pinned", key=("p",), pinned=True))
        store.admit(stub_view("a", key=("a",)))
        store.admit(stub_view("b", key=("b",)))  # over bound: "a" evicts
        assert store.lookup(("p",)) is not None
        assert store.lookup(("a",)) is None
        assert store.lookup(("b",)) is not None
        assert store.evictions == 1

    def test_drop_and_clear(self):
        store = MaterializedStore()
        store.admit(stub_view("a", key=("a",)))
        assert store.drop("missing") is None
        assert store.drop("a").name == "a"
        store.admit(stub_view("b", key=("b",)))
        assert store.clear() == 1
        assert len(store) == 0

    def test_stats_shape(self):
        store = MaterializedStore()
        store.admit(stub_view("a", key=("a",), pinned=True))
        stats = store.stats()
        assert stats["views"] == 1
        assert stats["pinned"] == 1
        assert stats["admissions"] == 1
        assert stats["bytes"] > 0


class TestAutoAdmission:
    def request(self):
        return QueryRequest(
            region=REGION, dataset="taxi", aggregates=("count", "sum:fare")
        )

    def test_third_observation_admits(self):
        dataset = make_dataset()
        for _ in range(2):
            response = dataset.query(self.request())
            assert response.stats.mv_cached == 0
        dataset.query(self.request())  # third observation: admitted
        served = dataset.query(self.request())
        assert served.stats.mv_cached == 1
        # The MV hit still probes (and counts on) the result tier.
        assert served.stats.result_cached == 1
        assert dataset.materialized.stats()["admissions"] == 1
        assert not dataset.materialized.views()[0].pinned

    def test_cache_off_dataset_never_admits(self):
        dataset = make_dataset(result_cache=False)
        for _ in range(5):
            assert dataset.query(self.request()).stats.mv_cached == 0
        assert len(dataset.materialized) == 0

    def test_batch_members_serve_but_do_not_feed_admission(self):
        dataset = make_dataset()
        for _ in range(5):
            dataset.run_batch([self.request()])
        assert len(dataset.materialized) == 0  # batches never admit
        dataset.materialize(self.request(), name="hot")
        responses = dataset.run_batch([self.request()])
        assert responses[0].stats.mv_cached == 1  # but they do serve

    def test_explicit_invalidate_clears_views(self):
        dataset = make_dataset()
        dataset.materialize(self.request(), name="hot")
        assert len(dataset.materialized) == 1
        assert dataset.invalidate_cache() == 1  # result-tier count, as before
        assert len(dataset.materialized) == 0
