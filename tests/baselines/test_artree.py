"""Tests for the aggregate R*-tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.artree import FANOUT, ARTree
from repro.core import AggSpec
from repro.geometry import BoundingBox, Polygon


@pytest.fixture(scope="module")
def small_artree(small_base) -> ARTree:
    return ARTree(small_base.subset(4000))


@pytest.fixture(scope="module")
def bulk_artree(small_base) -> ARTree:
    return ARTree(small_base.subset(4000), bulk=True)


class TestStructure:
    def test_fanout_respected(self, small_artree):
        def check(node):
            assert len(node.children) <= FANOUT
            if not node.leaf:
                for child in node.children:
                    check(child)

        check(small_artree.root)

    def test_bboxes_cover_children(self, small_artree):
        def check(node):
            for child in node.children:
                assert node.min_x <= child.min_x and node.max_x >= child.max_x
                assert node.min_y <= child.min_y and node.max_y >= child.max_y
                if not node.leaf:
                    check(child)

        check(small_artree.root)

    def test_node_aggregates_cover_subtree(self, small_artree):
        """Every node's record equals the fold of its children's."""

        def check(node) -> float:
            if node.leaf:
                total = sum(entry.record[0] for entry in node.children)
            else:
                total = sum(check(child) for child in node.children)
            assert node.record[0] == pytest.approx(total)
            return total

        assert check(small_artree.root) == 4000

    def test_bulk_has_fewer_or_equal_nodes(self, small_artree, bulk_artree):
        # STR packs nodes full; R* insertion fragments more.
        assert bulk_artree.num_nodes <= small_artree.num_nodes


class TestQueries:
    def _boxes(self):
        rng = np.random.default_rng(5)
        for _ in range(8):
            x0, x1 = sorted(rng.uniform(-74.15, -73.7, 2))
            y0, y1 = sorted(rng.uniform(40.5, 40.9, 2))
            yield BoundingBox(x0, y0, x1, y1)

    def test_count_upper_bounds_exact(self, small_artree, small_base):
        subset = small_base.subset(4000)
        for box in self._boxes():
            exact = int(box.contains_points(subset.table.xs, subset.table.ys).sum())
            got = small_artree.count(box)
            assert got >= exact

    def test_full_cover_query_is_exact(self, small_artree, small_base):
        subset = small_base.subset(4000)
        box = subset.table.bounding_box().expanded(0.01)
        # Fully containing rectangle: answered from the root aggregate,
        # no double counting possible.
        assert small_artree.count(box) == 4000

    def test_bulk_and_insert_agree_on_full_cover(self, small_artree, bulk_artree, small_base):
        box = small_base.subset(4000).table.bounding_box().expanded(0.01)
        assert small_artree.count(box) == bulk_artree.count(box)

    def test_select_aggregates(self, small_artree, small_base):
        subset = small_base.subset(4000)
        box = subset.table.bounding_box().expanded(0.01)
        result = small_artree.select(box, [AggSpec("sum", "fare"), AggSpec("max", "distance")])
        assert result["sum(fare)"] == pytest.approx(float(subset.table.column("fare").sum()))
        assert result["max(distance)"] == pytest.approx(
            float(subset.table.column("distance").max())
        )

    def test_polygon_uses_interior_rectangle(self, small_artree, small_base):
        polygon = Polygon.regular(-73.95, 40.74, 0.06, 6)
        count = small_artree.count(polygon)
        assert count >= 0

    def test_empty_region_query(self, small_artree):
        assert small_artree.count(BoundingBox(10.0, 10.0, 11.0, 11.0)) == 0


class TestIncrementalInsert:
    def test_insert_after_build(self, small_base):
        tree = ARTree(small_base.subset(500))
        record = np.zeros(1 + 3 * 2)
        record[0] = 1.0
        tree.insert(-73.9, 40.7, record)
        box = BoundingBox(-74.5, 40.0, -73.0, 41.5)
        assert tree.count(box) == 501

    def test_memory_overhead(self, small_artree):
        assert small_artree.memory_overhead_bytes() == small_artree.num_nodes * (
            32 + 7 * 8 + FANOUT * 8
        )
