"""Cross-baseline equivalence: the covering-based approaches must agree
exactly, and the scalar/vector folds must match."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BinarySearchIndex, BTreeIndex
from repro.core import AggSpec, GeoBlock

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
    AggSpec("avg", "fare"),
]

LEVEL = 14


@pytest.fixture(scope="module")
def competitors(small_base):
    return {
        "block": GeoBlock.build(small_base, LEVEL),
        "binary": BinarySearchIndex(small_base, LEVEL),
        "btree": BTreeIndex(small_base, LEVEL),
    }


class TestExactAgreement:
    def test_select_identical_across_sorted_approaches(self, competitors, small_polygons):
        for polygon in small_polygons:
            results = {name: c.select(polygon, AGGS) for name, c in competitors.items()}
            reference = results["block"]
            for name, result in results.items():
                assert result.count == reference.count, name
                for key, value in reference.values.items():
                    if np.isnan(value):
                        assert np.isnan(result.values[key]), (name, key)
                    else:
                        assert result.values[key] == pytest.approx(value), (name, key)

    def test_count_identical(self, competitors, small_polygons):
        for polygon in small_polygons:
            counts = {name: c.count(polygon) for name, c in competitors.items()}
            assert len(set(counts.values())) == 1, counts


class TestScalarMode:
    def test_scalar_equals_vector_fold(self, small_base, small_polygons):
        vector = BinarySearchIndex(small_base, LEVEL)
        scalar = BinarySearchIndex(small_base, LEVEL, scalar=True)
        for polygon in small_polygons[:6]:
            a = vector.select(polygon, AGGS)
            b = scalar.select(polygon, AGGS)
            assert a.count == b.count
            for key, value in a.values.items():
                if not np.isnan(value):
                    assert b.values[key] == pytest.approx(value)

    def test_btree_scalar_mode(self, small_base, small_polygons):
        scalar = BTreeIndex(small_base, LEVEL, scalar=True)
        vector = BTreeIndex(small_base, LEVEL)
        for polygon in small_polygons[:4]:
            assert scalar.select(polygon, AGGS).count == vector.select(polygon, AGGS).count


class TestOverheadAccounting:
    def test_binary_search_is_free(self, small_base):
        assert BinarySearchIndex(small_base, LEVEL).memory_overhead_bytes() == 0

    def test_btree_overhead_positive(self, small_base):
        assert BTreeIndex(small_base, LEVEL).memory_overhead_bytes() > 0

    def test_block_cheaper_than_btree_at_moderate_level(self, small_base):
        block = GeoBlock.build(small_base, 12)
        btree = BTreeIndex(small_base, 12)
        assert block.memory_bytes() < btree.memory_overhead_bytes()
