"""Tests for the from-scratch B+-tree."""

from __future__ import annotations

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.btree import BPlusTree
from repro.errors import BuildError


class TestInsertPath:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_behaves_like_sorted_multiset(self, keys):
        tree = BPlusTree(order=8)
        for value, key in enumerate(keys):
            tree.insert(key, value)
        tree.check_invariants()
        assert len(tree) == len(keys)
        assert [key for key, _ in tree.items()] == sorted(keys)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_matches_bisect(self, keys):
        tree = BPlusTree(order=6)
        for value, key in enumerate(keys):
            tree.insert(key, value)
        ordered = sorted(keys)
        for probe in range(0, 105, 7):
            hit = tree.lower_bound(probe)
            index = bisect.bisect_left(ordered, probe)
            if index == len(ordered):
                assert hit is None
            else:
                assert hit is not None and hit[0] == ordered[index]

    def test_duplicates_all_retrievable(self):
        tree = BPlusTree(order=4)
        for value in range(20):
            tree.insert(5, value)
        tree.insert(4, 99)
        tree.insert(6, 98)
        assert sorted(tree.get_all(5)) == list(range(20))
        tree.check_invariants()

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=8)
        for key in range(2000):
            tree.insert(key, key)
        assert tree.height <= 5
        tree.check_invariants()

    def test_order_validation(self):
        with pytest.raises(BuildError):
            BPlusTree(order=2)


class TestBulkLoad:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_bulk_equals_inserted(self, keys):
        keys = sorted(keys)
        bulk = BPlusTree.bulk_load(keys, order=8)
        bulk.check_invariants()
        assert [key for key, _ in bulk.items()] == keys
        # Values are positions in the sorted input.
        assert [value for _, value in bulk.items()] == list(range(len(keys)))

    def test_bulk_rejects_unsorted(self):
        with pytest.raises(BuildError):
            BPlusTree.bulk_load([3, 1, 2])

    def test_bulk_from_numpy(self):
        keys = np.arange(0, 1000, 3, dtype=np.int64)
        tree = BPlusTree.bulk_load(keys)
        tree.check_invariants()
        assert len(tree) == keys.size

    def test_bulk_lower_bound_with_duplicates_spanning_leaves(self):
        keys = [5] * 40 + [7] * 3
        tree = BPlusTree.bulk_load(keys, order=4)
        hit = tree.lower_bound(5)
        assert hit == (5, 0)  # first duplicate, first position
        assert tree.lower_bound(6) == (7, 40)

    def test_range_values(self):
        tree = BPlusTree.bulk_load(list(range(0, 100, 2)), order=8)
        values = tree.range_values(10, 20)
        assert [2 * v for v in values] == [10, 12, 14, 16, 18, 20]

    def test_iterate_from_tail(self):
        tree = BPlusTree.bulk_load([1, 5, 9], order=4)
        assert list(tree.iterate_from(6)) == [(9, 2)]
        assert list(tree.iterate_from(10)) == []

    def test_memory_accounting(self):
        tree = BPlusTree.bulk_load(list(range(1000)), order=16)
        assert tree.memory_bytes() == tree.num_nodes * 16 * 24
        assert tree.num_nodes > 1000 / 16
