"""Tests for the from-scratch PH-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.phtree import LEAF_CAPACITY, PHTree, _compact, _morton_interleave
from repro.core import AggSpec
from repro.geometry import BoundingBox, Polygon


@pytest.fixture(scope="module")
def phtree(small_base) -> PHTree:
    return PHTree(small_base)


class TestMortonCodes:
    def test_interleave_compact_roundtrip(self):
        rng = np.random.default_rng(2)
        ix = rng.integers(0, 2**32, 200)
        iy = rng.integers(0, 2**32, 200)
        codes = _morton_interleave(ix, iy)
        for index in range(0, 200, 13):
            code = int(codes[index])
            assert _compact(code >> 1) == int(ix[index])
            assert _compact(code) == int(iy[index])

    def test_codes_unsigned(self):
        ix = np.array([2**32 - 1], dtype=np.int64)
        iy = np.array([2**32 - 1], dtype=np.int64)
        codes = _morton_interleave(ix, iy)
        assert codes.dtype == np.uint64
        assert int(codes[0]) == 2**64 - 1

    def test_morton_order_preserves_prefix_grouping(self):
        # Quadrant code (top bit pair) dominates the ordering.
        ix = np.array([0, 2**31], dtype=np.int64)
        iy = np.array([2**31, 0], dtype=np.int64)
        codes = _morton_interleave(ix, iy)
        assert codes[0] < codes[1]  # x bit is the more significant


class TestWindowQueries:
    @given(
        st.floats(min_value=-74.2, max_value=-73.8),
        st.floats(min_value=40.5, max_value=40.85),
        st.floats(min_value=0.01, max_value=0.2),
        st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_count_matches_brute_force(self, x0, y0, w, h):
        phtree = _shared_phtree()
        base = phtree._base
        box = BoundingBox(x0, y0, x0 + w, y0 + h)
        got = phtree.count(box)
        want = int(box.contains_points(base.table.xs, base.table.ys).sum())
        # 32-bit quantisation can flip points on the exact border.
        assert abs(got - want) <= max(2, int(0.002 * max(want, 1)))

    def test_empty_window(self, phtree):
        assert phtree.count(BoundingBox(0.0, 0.0, 1.0, 1.0)) == 0

    def test_full_domain_window(self, phtree, small_base):
        box = small_base.table.bounding_box()
        assert phtree.count(box) == len(small_base)

    def test_select_aggregates_match_brute_force(self, phtree, small_base):
        box = BoundingBox(-74.0, 40.7, -73.9, 40.8)
        result = phtree.select(box, [AggSpec("count"), AggSpec("sum", "fare")])
        mask = box.contains_points(small_base.table.xs, small_base.table.ys)
        want_sum = float(small_base.table.column("fare")[mask].sum())
        assert result["sum(fare)"] == pytest.approx(want_sum, rel=0.01)

    def test_polygon_resolved_to_interior_rectangle(self, phtree, small_base):
        polygon = Polygon.regular(-73.95, 40.75, 0.05, 8)
        exact = polygon.count_contained(small_base.table.xs, small_base.table.ys)
        # The interior rectangle under-covers the polygon.
        assert phtree.count(polygon) <= exact

    def test_scalar_mode_matches(self, small_base):
        scalar = PHTree(small_base, scalar=True)
        vector = PHTree(small_base)
        box = BoundingBox(-74.0, 40.7, -73.9, 40.8)
        aggs = [AggSpec("count"), AggSpec("sum", "fare")]
        a = scalar.select(box, aggs)
        b = vector.select(box, aggs)
        assert a.count == b.count
        assert a["sum(fare)"] == pytest.approx(b["sum(fare)"])


class TestStructure:
    def test_prefix_sharing_limits_nodes(self, phtree, small_base):
        # Patricia collapsing keeps the node count well below one node
        # per point.
        assert phtree.num_nodes < len(small_base)

    def test_leaves_respect_capacity(self, phtree):
        def check(node):
            if node.is_leaf:
                if node.depth < 32:
                    assert node.hi - node.lo <= LEAF_CAPACITY
                return
            for child in node.children.values():
                check(child)

        check(phtree._root)

    def test_node_ranges_partition_rows(self, phtree):
        def check(node):
            if node.is_leaf:
                return
            child_ranges = sorted((child.lo, child.hi) for child in node.children.values())
            assert child_ranges[0][0] == node.lo
            assert child_ranges[-1][1] == node.hi
            for (_, prev_hi), (next_lo, _) in zip(child_ranges, child_ranges[1:]):
                assert prev_hi == next_lo
            for child in node.children.values():
                check(child)

        check(phtree._root)

    def test_memory_overhead_positive(self, phtree):
        assert phtree.memory_overhead_bytes() > 0


_PH_CACHE: dict[str, PHTree] = {}


def _shared_phtree() -> PHTree:
    if "tree" not in _PH_CACHE:
        from repro.cells import EARTH
        from repro.storage import PointTable, Schema, extract

        rng = np.random.default_rng(99)
        count = 20_000
        xs = np.concatenate(
            [rng.normal(-73.98, 0.03, count // 2), rng.normal(-73.80, 0.06, count // 2)]
        )
        ys = np.concatenate(
            [rng.normal(40.75, 0.03, count // 2), rng.normal(40.68, 0.05, count // 2)]
        )
        table = PointTable(
            Schema(["fare", "distance"]),
            xs,
            ys,
            {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
        )
        _PH_CACHE["tree"] = PHTree(extract(table, EARTH))
    return _PH_CACHE["tree"]
