"""Tests for the segment intersection primitives."""

from __future__ import annotations

from repro.geometry.segment import (
    on_segment,
    orientation,
    segment_intersects_box,
    segments_intersect,
)


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(0, 0, 1, 0, 1, 1) == 1

    def test_clockwise(self):
        assert orientation(0, 0, 1, 1, 1, 0) == -1

    def test_collinear(self):
        assert orientation(0, 0, 1, 1, 2, 2) == 0


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_touching_endpoint(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_collinear_overlap(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_t_junction(self):
        assert segments_intersect(0, 0, 2, 0, 1, -1, 1, 0)


class TestSegmentBox:
    def test_endpoint_inside(self):
        assert segment_intersects_box(0.5, 0.5, 5, 5, 0, 0, 1, 1)

    def test_pierces_through(self):
        assert segment_intersects_box(-1, 0.5, 2, 0.5, 0, 0, 1, 1)

    def test_misses_diagonally(self):
        # Near a corner but outside.
        assert not segment_intersects_box(1.5, -0.2, 2.2, 0.6, 0, 0, 1, 1)

    def test_trivial_reject_left(self):
        assert not segment_intersects_box(-3, 0, -2, 1, 0, 0, 1, 1)

    def test_touches_corner(self):
        assert segment_intersects_box(1, 1, 2, 2, 0, 0, 1, 1)

    def test_grazes_edge(self):
        assert segment_intersects_box(0, 1, 1, 1, 0, 0, 1, 1)


class TestOnSegment:
    def test_inside(self):
        assert on_segment(0, 0, 2, 2, 1, 1)

    def test_outside_bbox(self):
        assert not on_segment(0, 0, 2, 2, 3, 3)
