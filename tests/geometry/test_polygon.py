"""Tests for Polygon / MultiPolygon."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon

UNIT_SQUARE = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


@st.composite
def regular_polygons(draw):
    cx = draw(st.floats(min_value=-10, max_value=10))
    cy = draw(st.floats(min_value=-10, max_value=10))
    radius = draw(st.floats(min_value=0.1, max_value=5.0))
    sides = draw(st.integers(min_value=3, max_value=12))
    return Polygon.regular(cx, cy, radius, sides)


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_closing_vertex_dropped(self):
        explicit = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert explicit.num_vertices == 3

    def test_orientation_normalised(self):
        clockwise = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert clockwise.area() == pytest.approx(1.0)
        # Normalised to CCW: shoelace of stored vertices is positive.
        xs, ys = clockwise.xs, clockwise.ys
        shoelace = float(
            (xs * np.roll(ys, -1) - np.roll(xs, -1) * ys).sum() / 2.0
        )
        assert shoelace > 0

    def test_vertices_read_only(self):
        with pytest.raises(ValueError):
            UNIT_SQUARE.xs[0] = 99.0


class TestMetrics:
    def test_unit_square(self):
        assert UNIT_SQUARE.area() == pytest.approx(1.0)
        assert UNIT_SQUARE.perimeter() == pytest.approx(4.0)
        assert UNIT_SQUARE.centroid() == (pytest.approx(0.5), pytest.approx(0.5))

    @given(regular_polygons())
    @settings(max_examples=60, deadline=None)
    def test_regular_polygon_area_formula(self, polygon):
        sides = polygon.num_vertices
        # Recover the circumradius from the bbox... use vertex distance.
        cx, cy = polygon.centroid()
        radius = float(np.hypot(polygon.xs[0] - cx, polygon.ys[0] - cy))
        expected = 0.5 * sides * radius**2 * np.sin(2 * np.pi / sides)
        assert polygon.area() == pytest.approx(expected, rel=1e-6)

    def test_from_box(self):
        box = BoundingBox(1.0, 2.0, 4.0, 6.0)
        polygon = Polygon.from_box(box)
        assert polygon.area() == pytest.approx(box.area())
        assert polygon.bounding_box == box


class TestContainment:
    def test_boundary_counts_inside_scalar(self):
        assert UNIT_SQUARE.contains_point(0.0, 0.5)
        assert UNIT_SQUARE.contains_point(0.5, 0.0)
        assert UNIT_SQUARE.contains_point(0.0, 0.0)

    def test_outside(self):
        assert not UNIT_SQUARE.contains_point(1.5, 0.5)
        assert not UNIT_SQUARE.contains_point(0.5, -0.1)

    def test_concave_polygon(self):
        # A "U" shape: the notch is outside.
        u_shape = Polygon([(0, 0), (3, 0), (3, 3), (2, 3), (2, 1), (1, 1), (1, 3), (0, 3)])
        assert u_shape.contains_point(0.5, 2.0)
        assert u_shape.contains_point(2.5, 2.0)
        assert not u_shape.contains_point(1.5, 2.0)
        assert u_shape.contains_point(1.5, 0.5)

    @given(regular_polygons())
    @settings(max_examples=40, deadline=None)
    def test_vectorised_matches_scalar(self, polygon):
        rng = np.random.default_rng(17)
        box = polygon.bounding_box.expanded(0.5)
        xs = rng.uniform(box.min_x, box.max_x, 200)
        ys = rng.uniform(box.min_y, box.max_y, 200)
        vectorised = polygon.contains_points(xs, ys)
        for index in range(0, 200, 11):
            scalar = polygon.contains_point(float(xs[index]), float(ys[index]))
            # The vectorised path uses the half-open rule without
            # boundary special-casing; random points are a.s. interior.
            assert vectorised[index] == scalar

    @given(regular_polygons())
    @settings(max_examples=40, deadline=None)
    def test_centroid_inside_convex(self, polygon):
        cx, cy = polygon.centroid()
        assert polygon.contains_point(cx, cy)

    def test_count_contained(self):
        xs = np.array([0.5, 2.0, 0.1])
        ys = np.array([0.5, 0.5, 0.9])
        assert UNIT_SQUARE.count_contained(xs, ys) == 2


class TestTransforms:
    def test_translated(self):
        moved = UNIT_SQUARE.translated(10.0, -5.0)
        assert moved.contains_point(10.5, -4.5)
        assert not moved.contains_point(0.5, 0.5)

    def test_scaled(self):
        doubled = UNIT_SQUARE.scaled(2.0)
        assert doubled.area() == pytest.approx(4.0)
        assert doubled.centroid() == (pytest.approx(0.5), pytest.approx(0.5))

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(GeometryError):
            UNIT_SQUARE.scaled(0.0)


class TestMultiPolygon:
    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            MultiPolygon([])

    def test_union_semantics(self):
        left = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        right = Polygon([(2, 0), (3, 0), (3, 1), (2, 1)])
        multi = MultiPolygon([left, right])
        assert multi.contains_point(0.5, 0.5)
        assert multi.contains_point(2.5, 0.5)
        assert not multi.contains_point(1.5, 0.5)
        assert multi.area() == pytest.approx(2.0)
        assert multi.bounding_box == BoundingBox(0.0, 0.0, 3.0, 1.0)

    def test_vectorised_counts(self):
        left = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        right = Polygon([(2, 0), (3, 0), (3, 1), (2, 1)])
        multi = MultiPolygon([left, right])
        xs = np.array([0.5, 1.5, 2.5])
        ys = np.array([0.5, 0.5, 0.5])
        assert multi.count_contained(xs, ys) == 2
