"""Tests for interior rectangle extraction and polygon clipping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.clip import box_within_union, clip_polygon_to_box, clipped_area
from repro.geometry.interior import interior_box
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.relate import Relation, relate_box


class TestInteriorBox:
    def test_square_interior_nearly_fills(self):
        square = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        box = interior_box(square)
        assert box is not None
        assert relate_box(box, square) is Relation.WITHIN
        assert box.area() >= 0.9 * square.area()

    @given(
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=0.5, max_value=3.0),
        st.integers(min_value=3, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_within(self, cx, cy, radius, sides):
        polygon = Polygon.regular(cx, cy, radius, sides)
        box = interior_box(polygon)
        assert box is not None
        assert relate_box(box, polygon) is Relation.WITHIN

    def test_interior_is_substantial_for_convex(self):
        hexagon = Polygon.regular(0.0, 0.0, 1.0, 6)
        box = interior_box(hexagon)
        assert box is not None
        assert box.area() >= 0.4 * hexagon.area()

    def test_concave_polygon(self):
        u_shape = Polygon([(0, 0), (3, 0), (3, 3), (2, 3), (2, 1), (1, 1), (1, 3), (0, 3)])
        box = interior_box(u_shape)
        assert box is not None
        assert relate_box(box, u_shape) is Relation.WITHIN

    def test_union_spanning_box(self):
        """For a tessellation union, the box may span multiple parts."""
        left = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        right = Polygon([(2, 0), (4, 0), (4, 2), (2, 2)])
        union = MultiPolygon([left, right])
        box = interior_box(union)
        assert box is not None
        assert box.area() > left.area()  # crosses the shared edge


class TestClipping:
    SQUARE = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])

    def test_clip_identity(self):
        box = BoundingBox(-1, -1, 3, 3)
        assert clipped_area(self.SQUARE, box) == pytest.approx(self.SQUARE.area())

    def test_clip_half(self):
        box = BoundingBox(0, 0, 1, 2)
        assert clipped_area(self.SQUARE, box) == pytest.approx(2.0)

    def test_clip_disjoint(self):
        box = BoundingBox(5, 5, 6, 6)
        assert clipped_area(self.SQUARE, box) == 0.0

    def test_clip_triangle_corner(self):
        triangle = Polygon([(0, 0), (2, 0), (0, 2)])
        box = BoundingBox(0, 0, 1, 1)
        # The box keeps the unit corner square minus nothing: the
        # hypotenuse cuts at (1,1): area = 1 - 0.  Compute directly.
        vertices = clip_polygon_to_box(triangle, box)
        assert len(vertices) >= 3
        assert clipped_area(triangle, box) == pytest.approx(1.0)

    @given(
        st.floats(min_value=0.1, max_value=1.9),
        st.floats(min_value=0.1, max_value=1.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_clipped_area_never_exceeds_either(self, w, h):
        box = BoundingBox(0.0, 0.0, w, h)
        area = clipped_area(self.SQUARE, box)
        assert area <= min(box.area(), self.SQUARE.area()) + 1e-12
        assert area == pytest.approx(w * h)  # box inside the square


class TestBoxWithinUnion:
    LEFT = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
    RIGHT = Polygon([(2, 0), (4, 0), (4, 2), (2, 2)])
    UNION = MultiPolygon([LEFT, RIGHT])

    def test_box_across_shared_edge(self):
        assert box_within_union(BoundingBox(1.0, 0.5, 3.0, 1.5), self.UNION)

    def test_box_poking_out(self):
        assert not box_within_union(BoundingBox(1.0, 0.5, 5.0, 1.5), self.UNION)

    def test_degenerate_box(self):
        assert box_within_union(BoundingBox(1.0, 1.0, 1.0, 1.0), self.UNION)

    def test_gap_between_parts(self):
        gapped = MultiPolygon(
            [self.LEFT, Polygon([(3, 0), (5, 0), (5, 2), (3, 2)])]
        )
        assert not box_within_union(BoundingBox(1.5, 0.5, 3.5, 1.5), gapped)


class TestLatLng:
    def test_meters_per_degree(self):
        from repro.geometry import latlng

        assert latlng.meters_per_deg_lng(0.0) == pytest.approx(latlng.METERS_PER_DEG_LAT)
        assert latlng.meters_per_deg_lng(60.0) == pytest.approx(
            latlng.METERS_PER_DEG_LAT / 2.0, rel=1e-9
        )

    def test_diagonal(self):
        from repro.geometry import latlng

        diagonal = latlng.diagonal_meters(1.0, 1.0, 0.0)
        assert diagonal == pytest.approx(np.sqrt(2.0) * latlng.METERS_PER_DEG_LAT)

    def test_approx_distance_symmetry(self):
        from repro.geometry import latlng

        d1 = latlng.approx_distance_meters(-73.9, 40.7, -74.0, 40.8)
        d2 = latlng.approx_distance_meters(-74.0, 40.8, -73.9, 40.7)
        assert d1 == pytest.approx(d2)
        assert d1 > 0
