"""Tests for rectangle-vs-polygon classification."""

from __future__ import annotations

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.relate import Relation, box_intersects_region, box_within_region, relate_box

DIAMOND = Polygon([(0, -2), (2, 0), (0, 2), (-2, 0)])


class TestSimplePolygon:
    def test_disjoint(self):
        assert relate_box(BoundingBox(3, 3, 4, 4), DIAMOND) is Relation.DISJOINT

    def test_within(self):
        assert relate_box(BoundingBox(-0.4, -0.4, 0.4, 0.4), DIAMOND) is Relation.WITHIN

    def test_intersects_boundary(self):
        assert relate_box(BoundingBox(1.0, -0.5, 3.0, 0.5), DIAMOND) is Relation.INTERSECTS

    def test_contains_polygon(self):
        assert relate_box(BoundingBox(-5, -5, 5, 5), DIAMOND) is Relation.CONTAINS

    def test_corner_case_box_outside_bbox_overlap(self):
        # Overlaps the diamond's bbox near a corner but misses it.
        assert relate_box(BoundingBox(1.5, 1.5, 1.9, 1.9), DIAMOND) is Relation.DISJOINT

    def test_helpers(self):
        assert box_within_region(BoundingBox(-0.2, -0.2, 0.2, 0.2), DIAMOND)
        assert box_intersects_region(BoundingBox(1.0, -0.5, 3.0, 0.5), DIAMOND)
        assert not box_intersects_region(BoundingBox(5, 5, 6, 6), DIAMOND)


class TestConcave:
    U_SHAPE = Polygon([(0, 0), (3, 0), (3, 3), (2, 3), (2, 1), (1, 1), (1, 3), (0, 3)])

    def test_box_in_notch_is_disjoint(self):
        assert relate_box(BoundingBox(1.2, 1.5, 1.8, 2.5), self.U_SHAPE) is Relation.DISJOINT

    def test_box_in_left_arm_is_within(self):
        assert relate_box(BoundingBox(0.2, 1.5, 0.8, 2.5), self.U_SHAPE) is Relation.WITHIN

    def test_box_spanning_notch_intersects(self):
        assert relate_box(BoundingBox(0.5, 1.5, 2.5, 2.5), self.U_SHAPE) is Relation.INTERSECTS


class TestMultiPolygon:
    LEFT = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
    RIGHT = Polygon([(3, 0), (4, 0), (4, 1), (3, 1)])
    MULTI = MultiPolygon([LEFT, RIGHT])

    def test_within_one_part(self):
        assert relate_box(BoundingBox(0.2, 0.2, 0.8, 0.8), self.MULTI) is Relation.WITHIN

    def test_between_parts_disjoint(self):
        assert relate_box(BoundingBox(1.5, 0.2, 2.5, 0.8), self.MULTI) is Relation.DISJOINT

    def test_contains_one_part_only_is_intersects(self):
        # Encloses the left part but not the right.
        assert relate_box(BoundingBox(-1, -1, 2, 2), self.MULTI) is Relation.INTERSECTS

    def test_contains_all_parts(self):
        assert relate_box(BoundingBox(-1, -1, 5, 2), self.MULTI) is Relation.CONTAINS

    def test_crosses_part_boundary(self):
        assert relate_box(BoundingBox(0.5, 0.2, 1.5, 0.8), self.MULTI) is Relation.INTERSECTS


@pytest.mark.parametrize(
    "box, expected",
    [
        (BoundingBox(-2, -2, 2, 2), Relation.CONTAINS),  # equals polygon bbox
        (BoundingBox(0, 0, 2, 2), Relation.INTERSECTS),  # quarter overlap
    ],
)
def test_bbox_equality_edge_cases(box, expected):
    assert relate_box(box, DIAMOND) is expected
