"""Tests for BoundingBox."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.bbox import BoundingBox


class TestConstruction:
    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        box = BoundingBox.from_points([1.0, 3.0, 2.0], [5.0, 4.0, 6.0])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (1.0, 4.0, 3.0, 6.0)

    def test_from_points_empty_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox.from_points([], [])

    def test_degenerate_allowed(self):
        box = BoundingBox(1.0, 1.0, 1.0, 1.0)
        assert box.area() == 0.0
        assert box.contains_point(1.0, 1.0)


class TestPredicates:
    def test_contains_point_boundary(self):
        box = BoundingBox(0.0, 0.0, 2.0, 2.0)
        assert box.contains_point(0.0, 0.0)
        assert box.contains_point(2.0, 2.0)
        assert not box.contains_point(2.0001, 1.0)

    def test_contains_points_vectorised(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        xs = np.array([0.5, 1.5, 0.0])
        ys = np.array([0.5, 0.5, 1.0])
        assert box.contains_points(xs, ys).tolist() == [True, False, True]

    def test_intersects_touching_edges(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(1.0, 0.0, 2.0, 1.0)
        assert a.intersects(b)
        assert not a.intersects(BoundingBox(1.1, 0.0, 2.0, 1.0))

    def test_contains_box(self):
        outer = BoundingBox(0.0, 0.0, 4.0, 4.0)
        assert outer.contains_box(BoundingBox(1.0, 1.0, 3.0, 3.0))
        assert outer.contains_box(outer)
        assert not outer.contains_box(BoundingBox(1.0, 1.0, 5.0, 3.0))


class TestCombinators:
    def test_union(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, -1.0, 3.0, 0.5)
        union = a.union(b)
        assert (union.min_x, union.min_y, union.max_x, union.max_y) == (0.0, -1.0, 3.0, 1.0)

    def test_intersection(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 1.0, 3.0, 3.0)
        overlap = a.intersection(b)
        assert overlap == BoundingBox(1.0, 1.0, 2.0, 2.0)
        assert a.intersection(BoundingBox(5.0, 5.0, 6.0, 6.0)) is None

    def test_expanded_and_scaled(self):
        box = BoundingBox(0.0, 0.0, 2.0, 4.0)
        grown = box.expanded(1.0)
        assert (grown.width, grown.height) == (4.0, 6.0)
        halved = box.scaled(0.5)
        assert (halved.width, halved.height) == (1.0, 2.0)
        assert halved.center == box.center

    def test_scaled_negative_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(0.0, 0.0, 1.0, 1.0).scaled(-1.0)

    def test_corners_ccw(self):
        corners = list(BoundingBox(0.0, 0.0, 1.0, 2.0).corners())
        assert corners == [(0.0, 0.0), (1.0, 0.0), (1.0, 2.0), (0.0, 2.0)]
