"""Tests for workload construction."""

from __future__ import annotations

import pytest

from repro.core import AggSpec
from repro.errors import QueryError
from repro.geometry import Polygon
from repro.storage import Schema
from repro.workloads import (
    Workload,
    base_workload,
    combined_workload,
    default_aggregates,
    skewed_workload,
)


@pytest.fixture(scope="module")
def polygons() -> list[Polygon]:
    return [Polygon.regular(float(i), 0.0, 0.3, 4) for i in range(20)]


SCHEMA = Schema(["a", "b", "c"])
AGGS = default_aggregates(SCHEMA, 3)


class TestDefaultAggregates:
    def test_count_of_specs(self):
        assert len(default_aggregates(SCHEMA, 7)) == 7
        assert len(default_aggregates(SCHEMA, 1)) == 1

    def test_every_column_covered(self):
        specs = default_aggregates(SCHEMA, 7)
        covered = {spec.column for spec in specs}
        assert covered >= set(SCHEMA.names)

    def test_no_plain_count(self):
        specs = default_aggregates(SCHEMA, 8)
        assert all(spec.function != "count" for spec in specs)

    def test_validation(self):
        with pytest.raises(QueryError):
            default_aggregates(SCHEMA, 0)

    def test_empty_schema_falls_back_to_count(self):
        specs = default_aggregates(Schema([]), 3)
        assert specs == [AggSpec("count")]


class TestBaseWorkload:
    def test_one_query_per_polygon(self, polygons):
        workload = base_workload(polygons, AGGS)
        assert len(workload) == len(polygons)
        assert [query.region for query in workload] == polygons
        assert all(query.aggs == tuple(AGGS) for query in workload)


class TestSkewedWorkload:
    def test_ten_percent_by_default(self, polygons):
        workload = skewed_workload(polygons, AGGS, seed=1)
        assert len(workload) == 2  # 10% of 20

    def test_subset_of_base(self, polygons):
        workload = skewed_workload(polygons, AGGS, seed=1)
        for query in workload:
            assert query.region in polygons

    def test_deterministic_per_seed(self, polygons):
        a = skewed_workload(polygons, AGGS, seed=2)
        b = skewed_workload(polygons, AGGS, seed=2)
        assert [id(q.region) for q in a] == [id(q.region) for q in b]

    def test_fraction_validation(self, polygons):
        with pytest.raises(QueryError):
            skewed_workload(polygons, AGGS, fraction=0.0)


class TestComposition:
    def test_repeated(self, polygons):
        workload = base_workload(polygons, AGGS).repeated(3)
        assert len(workload) == 60
        with pytest.raises(QueryError):
            workload.repeated(0)

    def test_add(self, polygons):
        combined = base_workload(polygons[:5], AGGS) + base_workload(polygons[5:], AGGS)
        assert len(combined) == 20

    def test_combined_workload(self, polygons):
        base = base_workload(polygons, AGGS)
        skew = skewed_workload(polygons, AGGS, seed=3)
        combined = combined_workload(base, skew, skew_repeats=4)
        assert len(combined) == len(base) + 4 * len(skew)

    def test_regions_helper(self, polygons):
        workload = base_workload(polygons[:3], AGGS)
        assert workload.regions() == polygons[:3]

    def test_empty_workload_iteration(self):
        workload = Workload(name="empty")
        assert list(workload) == []
        assert len(workload) == 0
