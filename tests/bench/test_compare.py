"""Threshold logic of the perf-regression gate (pass / warn / fail)."""

from __future__ import annotations

from repro.bench import compare_results, has_failures, render_findings
from tests.bench.test_results_schema import make_payload


def result(median_s: float, calibration_s: float = 0.02, **overrides) -> dict:
    stats = {
        "median_s": median_s,
        "iqr_s": 0.0,
        "min_s": median_s,
        "max_s": median_s,
        "mean_s": median_s,
    }
    return make_payload(
        stats=stats,
        samples_s=[median_s] * 3,
        env={"calibration_s": calibration_s},
        **overrides,
    )


def statuses(findings, kind=None):
    return [f.status for f in findings if kind is None or f.kind == kind]


def test_equal_results_pass():
    findings = compare_results({"unit_test": result(0.010)}, {"unit_test": result(0.010)})
    assert statuses(findings, "runtime") == ["pass"]
    assert not has_failures(findings)


def test_ratio_between_warn_and_fail_warns():
    findings = compare_results({"unit_test": result(0.010)}, {"unit_test": result(0.020)})
    # 2.0x is past warn_ratio (1.75) but inside fail_ratio (3.5).
    assert statuses(findings, "runtime") == ["warn"]
    assert not has_failures(findings)


def test_ratio_past_fail_threshold_fails():
    findings = compare_results({"unit_test": result(0.010)}, {"unit_test": result(0.040)})
    assert statuses(findings, "runtime") == ["fail"]
    assert has_failures(findings)


def test_calibration_normalises_machine_speed():
    # Candidate is 2x slower in absolute time, but its machine's
    # calibration kernel is also 2x slower: normalised ratio is 1.0.
    baseline = result(0.010, calibration_s=0.02)
    candidate = result(0.020, calibration_s=0.04)
    findings = compare_results({"unit_test": baseline}, {"unit_test": candidate})
    assert statuses(findings, "runtime") == ["pass"]


def test_missing_calibration_falls_back_to_absolute():
    baseline = result(0.010)
    baseline["env"] = {}
    candidate = result(0.040, calibration_s=0.04)
    findings = compare_results({"unit_test": baseline}, {"unit_test": candidate})
    assert statuses(findings, "runtime") == ["fail"]


def test_strict_metric_change_fails():
    baseline = result(0.010)
    candidate = result(0.010, metrics={"queries": 58.0, "total_count": 1.0})
    findings = compare_results({"unit_test": baseline}, {"unit_test": candidate})
    assert "fail" in statuses(findings, "metric")
    assert has_failures(findings)


def test_strict_metric_missing_on_one_side_fails():
    # A vanished strict metric means the determinism gate no longer
    # covers it; that must fail, not degrade to a warning.
    baseline = result(0.010)
    candidate = result(0.010, metrics={"queries": 58.0}, strict_metrics=["queries"])
    findings = compare_results({"unit_test": baseline}, {"unit_test": candidate})
    assert "fail" in statuses(findings, "metric")


def test_bounded_metric_missing_fails():
    candidate = result(0.010, metric_bounds={"speedup": [1.0, None]})
    findings = compare_results({"unit_test": result(0.010)}, {"unit_test": candidate})
    assert "fail" in statuses(findings, "bounds")


def test_metric_bounds_enforced():
    candidate = result(
        0.010,
        metrics={"queries": 58.0, "total_count": 32349.0, "speedup": 0.5},
        metric_bounds={"speedup": [0.75, None]},
    )
    findings = compare_results({"unit_test": result(0.010)}, {"unit_test": candidate})
    assert "fail" in statuses(findings, "bounds")


def test_coverage_drift_warns_but_does_not_fail():
    findings = compare_results(
        {"only_baseline": result(0.010)}, {"only_candidate": result(0.010)}
    )
    assert statuses(findings, "coverage") == ["warn", "warn"]
    assert not has_failures(findings)


def test_scale_mismatch_skips_runtime_comparison():
    findings = compare_results(
        {"unit_test": result(0.010, scale="paper")},
        {"unit_test": result(0.100, scale="smoke")},
    )
    assert statuses(findings, "runtime") == []
    assert statuses(findings, "coverage") == ["warn"]


def test_render_findings_summarises_counts():
    findings = compare_results({"unit_test": result(0.010)}, {"unit_test": result(0.020)})
    text = render_findings(findings)
    assert "[WARN]" in text
    assert text.splitlines()[-1].startswith("compare:")
