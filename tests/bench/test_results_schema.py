"""Schema round-trip and validation of the BENCH_*.json result format."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchError,
    load_result,
    load_results,
    result_filename,
    validate_result,
    write_result,
)


def make_payload(**overrides) -> dict:
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenario": "unit_test",
        "group": "engine",
        "description": "synthetic payload",
        "scale": "smoke",
        "seed": 7,
        "repeats": 3,
        "warmup": 1,
        "samples_s": [0.011, 0.010, 0.012],
        "stats": {
            "median_s": 0.011,
            "iqr_s": 0.001,
            "min_s": 0.010,
            "max_s": 0.012,
            "mean_s": 0.011,
        },
        "thresholds": {"warn_ratio": 1.75, "fail_ratio": 3.5},
        "metrics": {"queries": 58.0, "total_count": 32349.0},
        "strict_metrics": ["queries", "total_count"],
        "metric_bounds": {},
        "env": {"calibration_s": 0.02},
        "created": "2026-07-30T00:00:00+00:00",
    }
    payload.update(overrides)
    return payload


def test_valid_payload_passes():
    validate_result(make_payload())


def test_write_load_roundtrip(tmp_path):
    payload = make_payload()
    path = write_result(payload, tmp_path)
    assert path.name == result_filename("unit_test") == "BENCH_unit_test.json"
    assert load_result(path) == payload
    # The file is plain, stable JSON (sorted keys, trailing newline).
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == payload


def test_load_results_from_directory_and_files(tmp_path):
    write_result(make_payload(scenario="one"), tmp_path)
    write_result(make_payload(scenario="two"), tmp_path)
    by_name = load_results([tmp_path])
    assert sorted(by_name) == ["one", "two"]
    single = load_results([tmp_path / "BENCH_one.json"])
    assert list(single) == ["one"]
    with pytest.raises(BenchError):
        load_results([tmp_path / "does_not_exist.json"])


@pytest.mark.parametrize(
    "overrides",
    [
        {"schema_version": 99},
        {"scenario": ""},
        {"group": "nope"},
        {"repeats": 0},
        {"samples_s": [0.01]},  # length must equal repeats
        {"samples_s": [0.01, -1.0, 0.01]},
        {"stats": {"median_s": 0.01}},  # missing summary keys
        {"thresholds": {"warn_ratio": 2.0, "fail_ratio": 1.0}},  # warn > fail
        {"metrics": {"queries": "58"}},  # non-numeric metric
        {"strict_metrics": ["missing_metric"]},
        {"artifacts": []},  # must be a dict when present
    ],
)
def test_invalid_payloads_raise(overrides):
    with pytest.raises(BenchError):
        validate_result(make_payload(**overrides))


def test_load_rejects_malformed_json(tmp_path):
    path = tmp_path / "BENCH_broken.json"
    path.write_text("{not json")
    with pytest.raises(BenchError):
        load_result(path)
    path.write_text("[1, 2, 3]\n")
    with pytest.raises(BenchError):
        load_result(path)
