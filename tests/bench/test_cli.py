"""CLI behaviour on synthetic results (no timing involved)."""

from __future__ import annotations

import json

from repro.bench.cli import main
from repro.bench import render_markdown, write_result
from tests.bench.test_compare import result


def test_compare_passes_and_exits_zero(tmp_path, capsys):
    baseline_dir = tmp_path / "baseline"
    candidate_dir = tmp_path / "candidate"
    write_result(result(0.010), baseline_dir)
    write_result(result(0.011), candidate_dir)
    code = main(["compare", str(baseline_dir), "--candidate", str(candidate_dir)])
    assert code == 0
    assert "[PASS]" in capsys.readouterr().out


def test_compare_exits_nonzero_on_regression(tmp_path, capsys):
    baseline_dir = tmp_path / "baseline"
    candidate_dir = tmp_path / "candidate"
    write_result(result(0.010), baseline_dir)
    write_result(result(0.050), candidate_dir)  # 5x > fail_ratio 3.5
    code = main(["compare", str(baseline_dir), "--candidate", str(candidate_dir)])
    assert code == 1
    assert "[FAIL]" in capsys.readouterr().out


def test_compare_rejects_missing_baseline_path(tmp_path, capsys):
    code = main(["compare", str(tmp_path / "nope"), "--candidate", str(tmp_path)])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_report_renders_markdown_table(tmp_path, capsys):
    write_result(result(0.010), tmp_path)
    assert main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "| scenario |" in out
    assert "unit_test" in out

    out_file = tmp_path / "report.md"
    assert main(["report", str(tmp_path), "--out", str(out_file)]) == 0
    assert "unit_test" in out_file.read_text()


def test_report_markdown_orders_by_group(tmp_path):
    write_result(result(0.010, scenario="zz_experiment", group="experiment"), tmp_path)
    write_result(result(0.010, scenario="aa_serving", group="serving"), tmp_path)
    text = render_markdown(
        {
            "zz_experiment": json.loads((tmp_path / "BENCH_zz_experiment.json").read_text()),
            "aa_serving": json.loads((tmp_path / "BENCH_aa_serving.json").read_text()),
        }
    )
    lines = [line for line in text.splitlines() if line.startswith("| ")][1:]
    assert lines[0].startswith("| zz_experiment")  # experiment group first


def test_run_rejects_name_excluded_by_group_filter(capsys):
    # An explicitly named scenario conflicting with --group must error,
    # not silently drop from the run.
    code = main(["run", "fig10", "--group", "engine"])
    assert code == 2
    assert "excluded by --group" in capsys.readouterr().err


def test_list_names_every_group(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for needle in ("fig10", "engine_batch_parity", "api_batch_sharded"):
        assert needle in out
