"""Registry contents and scenario invariants."""

from __future__ import annotations

import pytest

from repro.bench import (
    BenchError,
    Prepared,
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    run_scenario,
)
from repro.bench.scenarios import BLOCK_KINDS, EXPERIMENT_IDS


def test_every_experiment_is_registered():
    names = {scenario.name for scenario in all_scenarios()}
    assert set(EXPERIMENT_IDS) <= names


def test_serving_matrix_covers_every_path_and_kind():
    names = {scenario.name for scenario in all_scenarios()}
    for prefix in ("engine_select", "engine_batch", "api_single", "api_batch"):
        for kind in BLOCK_KINDS:
            assert f"{prefix}_{kind}" in names
    assert "engine_batch_parity" in names


def test_groups_cover_raw_engine_and_serving():
    groups = {scenario.group for scenario in all_scenarios()}
    assert groups == {"experiment", "engine", "serving", "http"}


def test_at_least_eight_scenarios_beyond_experiments():
    serving = [s for s in all_scenarios() if s.group in ("engine", "serving")]
    assert len(serving) >= 8


def test_unknown_scenario_raises():
    with pytest.raises(BenchError):
        get_scenario("no_such_scenario")


def test_duplicate_registration_raises():
    scenario = get_scenario("engine_select_plain")
    with pytest.raises(BenchError):
        register(scenario)
    # ... unless explicitly replacing (used by downstream extensions).
    assert register(scenario, replace=True) is scenario


def test_scenario_threshold_invariants():
    for scenario in all_scenarios():
        assert 0 < scenario.warn_ratio <= scenario.fail_ratio


def test_declared_but_unemitted_metric_raises():
    # Silently dropping a declared strict/bounded metric would disable
    # the compare gate; the runner refuses to produce such a result.
    silent = Scenario(
        name="drops_its_metric",
        group="engine",
        description="synthetic",
        build=lambda scale: Prepared(lambda: None, lambda last: {"metrics": {}}),
        strict_metrics=("gone",),
    )
    with pytest.raises(BenchError, match="gone"):
        run_scenario(silent, scale="smoke")


def test_bad_scenario_definitions_rejected():
    with pytest.raises(BenchError):
        Scenario(name="x", group="bogus", description="", build=lambda scale: None)
    with pytest.raises(BenchError):
        Scenario(
            name="x",
            group="engine",
            description="",
            build=lambda scale: None,
            warn_ratio=3.0,
            fail_ratio=2.0,
        )
