"""Smoke runs of registered scenarios: one per block kind, schema-valid
results, and determinism of the strict metrics under the pinned seed.

These execute real (tiny) workloads, so they carry the ``bench``
marker; ``-m "not bench"`` deselects them.
"""

from __future__ import annotations

import pytest

from repro.bench import get_scale, run_scenario, validate_result, write_result
from repro.bench.cli import main
from repro.bench.scenarios import clear_context_cache
from repro.experiments.common import ExperimentConfig

pytestmark = pytest.mark.bench

#: The floor sizing (``scaled`` clamps at 1000 points) keeps these runs
#: in the low seconds while exercising the full build+measure path.
TINY = ExperimentConfig(nyc_points=1_000, tweets_points=1_000, osm_points=1_000)


@pytest.fixture(scope="module")
def tiny_scale():
    return get_scale("smoke").with_config(TINY)


@pytest.mark.parametrize(
    "scenario_name",
    ["engine_select_plain", "engine_batch_sharded", "api_batch_adaptive"],
)
def test_one_scenario_per_block_kind(tiny_scale, scenario_name, tmp_path):
    payload = run_scenario(scenario_name, scale=tiny_scale)
    validate_result(payload)
    assert payload["scenario"] == scenario_name
    assert payload["metrics"]["queries"] > 0
    assert payload["metrics"]["total_count"] >= 0
    assert payload["env"]["calibration_s"] > 0
    # Round-trips through the on-disk format.
    path = write_result(payload, tmp_path)
    assert path.exists()


def test_strict_metrics_deterministic_under_pinned_seed(tiny_scale):
    first = run_scenario("engine_select_plain", scale=tiny_scale)
    clear_context_cache()  # force a fresh block build from the same seed
    second = run_scenario("engine_select_plain", scale=tiny_scale)
    for metric in first["strict_metrics"]:
        assert first["metrics"][metric] == second["metrics"][metric]
    # The float checksum is seed-deterministic too on a plain block.
    assert first["metrics"]["value_checksum"] == pytest.approx(
        second["metrics"]["value_checksum"], rel=0, abs=1e-6
    )


def test_experiment_scenario_records_tables(tiny_scale):
    payload = run_scenario("fig11c", scale=tiny_scale)
    validate_result(payload)
    tables = payload["artifacts"]["tables"]
    assert len(tables) == 1
    assert tables[0]["rows"]
    assert payload["metrics"]["rows"] == float(len(tables[0]["rows"]))


def test_cli_run_writes_schema_valid_results(tmp_path, capsys, monkeypatch):
    # The CLI always runs the registered scales; point it at the
    # cheapest experiment scenario to keep this a smoke test.
    monkeypatch.setenv("REPRO_SCALE", "0.01")
    code = main(["run", "table2", "--out", str(tmp_path)])
    assert code == 0
    files = list(tmp_path.glob("BENCH_*.json"))
    assert [path.name for path in files] == ["BENCH_table2.json"]
    assert "BENCH_table2.json" in capsys.readouterr().out
