"""GeoJSON wire-format parsing: orientation, holes, malformed input."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ApiError, region_from_geojson, region_to_geojson
from repro.api.errors import BAD_REGION
from repro.geometry import BoundingBox, MultiPolygon, Polygon

SQUARE_CCW = [[-74.0, 40.7], [-73.9, 40.7], [-73.9, 40.8], [-74.0, 40.8], [-74.0, 40.7]]
SQUARE_CW = list(reversed(SQUARE_CCW))


def polygon_geojson(ring=SQUARE_CCW, extra_rings=()):  # noqa: ANN001
    return {"type": "Polygon", "coordinates": [ring, *extra_rings]}


def _signed_area(ring) -> float:  # noqa: ANN001
    xs = np.array([p[0] for p in ring[:-1]])
    ys = np.array([p[1] for p in ring[:-1]])
    return float((xs * np.roll(ys, -1) - np.roll(xs, -1) * ys).sum())


class TestValidParsing:
    def test_ccw_exterior_ring(self):
        region = region_from_geojson(polygon_geojson())
        assert isinstance(region, Polygon)
        assert region.num_vertices == 4

    def test_cw_ring_normalised_to_same_polygon(self):
        """Legacy producers emit clockwise exteriors; both orientations
        must parse to the same (CCW-normalised) region."""
        ccw = region_from_geojson(polygon_geojson(SQUARE_CCW))
        cw = region_from_geojson(polygon_geojson(SQUARE_CW))
        assert set(ccw.vertices()) == set(cw.vertices())
        # The geometry kernel normalises both to counter-clockwise
        # (same cycle; the starting vertex may differ).
        assert _signed_area(region_to_geojson(cw)["coordinates"][0]) > 0
        assert _signed_area(region_to_geojson(ccw)["coordinates"][0]) > 0

    def test_unclosed_ring_accepted(self):
        closed = region_from_geojson(polygon_geojson(SQUARE_CCW))
        unclosed = region_from_geojson(polygon_geojson(SQUARE_CCW[:-1]))
        assert closed.vertices() == unclosed.vertices()

    def test_feature_wrapper_unwraps(self):
        feature = {
            "type": "Feature",
            "properties": {"name": "midtown"},
            "geometry": polygon_geojson(),
        }
        region = region_from_geojson(feature)
        assert isinstance(region, Polygon)

    def test_multipolygon(self):
        shifted = [[x + 1.0, y] for x, y in SQUARE_CCW]
        obj = {"type": "MultiPolygon", "coordinates": [[SQUARE_CCW], [shifted]]}
        region = region_from_geojson(obj)
        assert isinstance(region, MultiPolygon)
        assert len(region.parts) == 2

    def test_single_part_multipolygon_collapses_to_polygon(self):
        obj = {"type": "MultiPolygon", "coordinates": [[SQUARE_CCW]]}
        assert isinstance(region_from_geojson(obj), Polygon)

    def test_integer_coordinates_accepted(self):
        ring = [[0, 0], [4, 0], [4, 4], [0, 4]]
        region = region_from_geojson(polygon_geojson(ring))
        assert region.area() == pytest.approx(16.0)


class TestHoles:
    def test_interior_ring_rejected_with_api_error(self):
        hole = [[-73.98, 40.72], [-73.92, 40.72], [-73.92, 40.78], [-73.98, 40.78]]
        with pytest.raises(ApiError) as excinfo:
            region_from_geojson(polygon_geojson(extra_rings=[hole]))
        assert excinfo.value.code == BAD_REGION
        assert "holes" in str(excinfo.value)
        assert excinfo.value.details["rings"] == 2


class TestMalformed:
    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "not a dict",
            42,
            [],
            {},  # no type
            {"type": "Point", "coordinates": [0.0, 0.0]},
            {"type": "Polygon"},  # no coordinates
            {"type": "Polygon", "coordinates": None},
            {"type": "Polygon", "coordinates": []},
            {"type": "Polygon", "coordinates": "ring"},
            {"type": "Polygon", "coordinates": [[[0.0, 0.0], [1.0, 1.0]]]},  # short ring
            {"type": "Polygon", "coordinates": [[[0.0, 0.0], [1.0], [1.0, 1.0]]]},
            {"type": "Polygon", "coordinates": [[[0.0, 0.0], "xy", [1.0, 1.0]]]},
            {"type": "Polygon", "coordinates": [[[0.0, 0.0], [True, False], [1.0, 1.0]]]},
            # Closed ring that collapses to two distinct vertices: the
            # geometry kernel's GeometryError must surface as ApiError.
            {"type": "Polygon", "coordinates": [[[0.0, 0.0], [1.0, 1.0], [0.0, 0.0]]]},
            {"type": "Feature"},  # no geometry
            {"type": "Feature", "geometry": "nope"},
            {"type": "MultiPolygon", "coordinates": []},
            {"type": "MultiPolygon", "coordinates": [[[0.0, 0.0]]]},
        ],
    )
    def test_malformed_raises_api_error_not_key_or_index_error(self, payload):
        """The contract the wire boundary exists for: client garbage is
        a typed bad_region error, never a server-side KeyError/etc."""
        with pytest.raises(ApiError) as excinfo:
            region_from_geojson(payload)
        assert excinfo.value.code == BAD_REGION
        assert not isinstance(excinfo.value, (KeyError, IndexError, TypeError))


class TestSerialisation:
    def test_polygon_round_trip(self):
        polygon = Polygon.regular(-73.95, 40.75, 0.05, 7)
        obj = region_to_geojson(polygon)
        back = region_from_geojson(obj)
        assert np.allclose(back.xs, polygon.xs)
        assert np.allclose(back.ys, polygon.ys)

    def test_emitted_ring_is_closed_and_ccw(self):
        obj = region_to_geojson(region_from_geojson(polygon_geojson(SQUARE_CW)))
        ring = obj["coordinates"][0]
        assert ring[0] == ring[-1]
        assert _signed_area(ring) > 0  # counter-clockwise

    def test_multipolygon_round_trip(self):
        parts = [Polygon.regular(0.0, 0.0, 1.0, 5), Polygon.regular(5.0, 0.0, 1.0, 6)]
        multi = MultiPolygon(parts)
        back = region_from_geojson(region_to_geojson(multi))
        assert isinstance(back, MultiPolygon)
        assert len(back.parts) == 2
        assert back.area() == pytest.approx(multi.area())

    def test_bbox_emits_four_corner_polygon(self):
        obj = region_to_geojson(BoundingBox(-74.0, 40.7, -73.9, 40.8))
        assert obj["type"] == "Polygon"
        back = region_from_geojson(obj)
        assert back.bounding_box == BoundingBox(-74.0, 40.7, -73.9, 40.8)
