"""The write path: appends, versioning, view propagation, error gaps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ApiError,
    AppendRequest,
    Dataset,
    GeoService,
    QueryRequest,
    col,
    region_to_geojson,
)
from repro.api.errors import BAD_REQUEST, UNSUPPORTED_OP
from repro.cells import EARTH
from repro.core import AggSpec, CachePolicy
from repro.engine.shards import ShardedGeoBlock
from repro.storage import PointTable, Schema, extract

LEVEL = 14

AGG_STRINGS = ["count", "sum:fare", "min:fare", "max:distance", "avg:distance"]


def make_base(count=8000, seed=55):
    rng = np.random.default_rng(seed)
    table = PointTable(
        Schema(["fare", "distance"]),
        rng.normal(-73.95, 0.04, count),
        rng.normal(40.75, 0.03, count),
        {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
    )
    return extract(table, EARTH)


def make_rows(count=60, seed=7):
    rng = np.random.default_rng(seed)
    return [
        {
            "x": float(x),
            "y": float(y),
            "fare": float(fare),
            "distance": float(distance),
        }
        for x, y, fare, distance in zip(
            rng.normal(-73.93, 0.06, count),
            rng.normal(40.74, 0.05, count),
            rng.gamma(3.0, 4.0, count),
            rng.gamma(2.0, 2.0, count),
        )
    ]


def rebuilt_base(base, rows):
    """Base data of original tuples plus the appended rows."""
    table = base.table
    xs = np.concatenate([table.xs, [row["x"] for row in rows]])
    ys = np.concatenate([table.ys, [row["y"] for row in rows]])
    columns = {
        name: np.concatenate([table.column(name), [row[name] for row in rows]])
        for name in table.schema.names
    }
    return extract(PointTable(table.schema, xs, ys, columns), EARTH)


def build_dataset(base, kind, **kwargs):
    if kind == "adaptive":
        kwargs.setdefault("policy", CachePolicy(threshold=0.5))
    elif kind == "sharded":
        kwargs.setdefault("shard_level", 11)
    return Dataset.build(base, LEVEL, kind, name="taxi", **kwargs)


@pytest.fixture(params=["geoblock", "sharded", "adaptive"])
def kind(request) -> str:
    return request.param


class TestAppendThenQueryParity:
    def test_matches_fresh_rebuild(self, kind, small_polygons):
        """The acceptance gate: append followed by a query answers like
        a from-scratch rebuild over the combined rows, on every kind."""
        base = make_base()
        dataset = build_dataset(base, kind)
        rows = make_rows()
        response = dataset.append(rows)
        assert response.appended == len(rows)
        assert response.version == 2
        fresh = build_dataset(rebuilt_base(base, rows), kind)
        for polygon in small_polygons[:6]:
            got = dataset.query(QueryRequest(region=polygon, aggregates=AGG_STRINGS))
            want = fresh.query(QueryRequest(region=polygon, aggregates=AGG_STRINGS))
            assert got.count == want.count
            for key, value in want.values.items():
                if np.isnan(value):
                    assert np.isnan(got.values[key])
                else:
                    assert got.values[key] == pytest.approx(value, rel=1e-12)

    def test_adaptive_trie_refreshes_in_place(self, small_polygons):
        """Cached trie records absorb appended rows (Section 5's
        root-to-leaf refresh) -- cached answers match a cache bypass."""
        base = make_base()
        dataset = build_dataset(base, "adaptive")
        for polygon in small_polygons:
            dataset.handle.select(polygon, [AggSpec("count"), AggSpec("sum", "fare")])
        dataset.handle.adapt()
        dataset.append(make_rows())
        for polygon in small_polygons[:6]:
            cached = dataset.query(QueryRequest(region=polygon, aggregates=AGG_STRINGS))
            direct = dataset.query(
                QueryRequest(region=polygon, aggregates=AGG_STRINGS, cache=False)
            )
            assert cached.count == direct.count
            for key, value in direct.values.items():
                if np.isnan(value):
                    assert np.isnan(cached.values[key])
                else:
                    assert cached.values[key] == pytest.approx(value, rel=1e-12)


class TestVersioning:
    def test_version_bumps_monotonically_and_stamps_responses(self, quad_polygon):
        dataset = build_dataset(make_base(), "geoblock")
        request = QueryRequest(region=quad_polygon, dataset="taxi")
        assert dataset.query(request).version == 1
        first = dataset.append(make_rows(5, seed=1))
        assert first.version == 2
        second = dataset.append(make_rows(5, seed=2))
        assert second.version == 3
        assert dataset.version == 3
        assert dataset.query(request).version == 3
        [batched] = dataset.run_batch([request])
        assert batched.version == 3

    def test_describe_reports_version(self):
        dataset = build_dataset(make_base(), "geoblock")
        dataset.append(make_rows(3))
        assert dataset.describe()["version"] == 2


class TestViewPropagation:
    def test_matching_rows_reach_views(self, quad_polygon):
        dataset = build_dataset(make_base(), "geoblock")
        view = dataset.view(col("distance") >= 4)
        before = view.query(QueryRequest(region=quad_polygon)).count
        rows = [
            {"x": -73.95, "y": 40.75, "fare": 10.0, "distance": 9.0},  # matches
            {"x": -73.95, "y": 40.75, "fare": 10.0, "distance": 1.0},  # filtered out
        ]
        dataset.append(rows)
        after = view.query(QueryRequest(region=quad_polygon))
        assert after.count == before + 1
        assert after.version == dataset.version == 2

    def test_view_append_parity_with_rebuild(self, kind, small_polygons):
        """Views updated through parent appends answer like a filtered
        dataset rebuilt from the combined base."""
        base = make_base()
        dataset = build_dataset(base, kind)
        predicate = col("distance") >= 4
        dataset.view(predicate)  # materialise before the append
        rows = make_rows()
        dataset.append(rows)
        fresh = Dataset.build(rebuilt_base(base, rows), LEVEL, predicate=predicate)
        for polygon in small_polygons[:4]:
            got = dataset.query(QueryRequest(region=polygon, where=predicate, aggregates=AGG_STRINGS))
            want = fresh.query(QueryRequest(region=polygon, aggregates=AGG_STRINGS))
            assert got.count == want.count
            for key, value in want.values.items():
                if np.isnan(value):
                    assert np.isnan(got.values[key])
                else:
                    assert got.values[key] == pytest.approx(value, rel=1e-12)

    def test_replay_is_immune_to_caller_row_mutation(self, quad_polygon):
        """Appended rows are snapshotted: a caller mutating its dicts
        afterwards must not corrupt later view replays (code-review
        regression)."""
        dataset = build_dataset(make_base(), "geoblock")
        row = {"x": -73.95, "y": 40.75, "fare": 10.0, "distance": 9.0}
        dataset.append([row])
        row["distance"] = 0.0  # would fail the view predicate if read
        view = dataset.view(col("distance") >= 4)
        got = view.query(QueryRequest(region=quad_polygon)).count
        fresh = build_dataset(make_base(), "geoblock")
        fresh_count = fresh.view(col("distance") >= 4).query(
            QueryRequest(region=quad_polygon)
        ).count
        assert got == fresh_count + 1

    def test_view_created_after_append_sees_rows(self, quad_polygon):
        """Views rebuild from the retained base, which predates earlier
        appends -- the parent replays the qualifying appended rows into
        freshly built views so they agree with its block."""
        dataset = build_dataset(make_base(), "geoblock")
        before = build_dataset(make_base(), "geoblock").view(
            col("distance") >= 4
        ).query(QueryRequest(region=quad_polygon)).count
        dataset.append([{"x": -73.95, "y": 40.75, "fare": 10.0, "distance": 9.0}])
        view = dataset.view(col("distance") >= 4)
        assert view.version == dataset.version
        assert view.query(QueryRequest(region=quad_polygon)).count == before + 1


class TestUnsupportedAndErrors:
    def test_append_to_view_unsupported(self):
        dataset = build_dataset(make_base(), "geoblock")
        view = dataset.view(col("distance") >= 4)
        with pytest.raises(ApiError) as excinfo:
            view.append(make_rows(2))
        assert excinfo.value.code == UNSUPPORTED_OP
        assert "filtered view" in excinfo.value.message

    def test_fluent_where_append_unsupported(self):
        dataset = build_dataset(make_base(), "geoblock")
        with pytest.raises(ApiError) as excinfo:
            dataset.over({"bbox": [-74.0, 40.7, -73.9, 40.8]}).where(
                col("distance") >= 4
            ).append(make_rows(2))
        assert excinfo.value.code == UNSUPPORTED_OP
        # The rejected write must not have built (and cached) the view
        # it was never going to append to (code-review regression).
        assert len(dataset._views) == 0

    def test_fluent_grouped_append_unsupported(self, small_polygons):
        """A grouped builder must reject .append the same way a
        filtered one does -- silently writing the whole dataset would
        discard the scoping the caller expressed (code-review
        regression)."""
        from repro.api import region_to_geojson

        dataset = build_dataset(make_base(), "geoblock")
        fc = {
            "type": "FeatureCollection",
            "features": [
                {"type": "Feature", "properties": {"name": "a"},
                 "geometry": region_to_geojson(small_polygons[0])},
            ],
        }
        with pytest.raises(ApiError) as excinfo:
            dataset.group_by(fc).append(make_rows(2))
        assert excinfo.value.code == UNSUPPORTED_OP
        assert dataset.version == 1  # nothing was written

    def test_wire_append_error_is_enveloped_not_raised(self):
        service = GeoService()
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        view_payload = {"v": 2, "op": "append", "dataset": "taxi", "rows": [{"x": 1}]}
        envelope = service.run_dict(view_payload)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == BAD_REQUEST  # malformed row

    def test_malformed_rows_rejected_atomically(self, quad_polygon):
        dataset = build_dataset(make_base(), "geoblock")
        count_before = dataset.query(QueryRequest(region=quad_polygon)).count
        rows = make_rows(3) + [{"x": -73.95, "y": 40.75, "fare": 1.0}]  # missing distance
        with pytest.raises(ApiError) as excinfo:
            dataset.append(rows)
        assert excinfo.value.code == BAD_REQUEST
        assert "distance" in excinfo.value.message
        assert dataset.version == 1  # nothing applied
        assert dataset.query(QueryRequest(region=quad_polygon)).count == count_before

    def test_empty_rows_rejected(self):
        dataset = build_dataset(make_base(), "geoblock")
        with pytest.raises(ApiError):
            dataset.append([])

    def test_append_requires_v2_envelope(self):
        with pytest.raises(ApiError) as excinfo:
            AppendRequest.from_dict({"op": "append", "rows": [{"x": 1}]})
        assert excinfo.value.code == BAD_REQUEST
        assert "v2" in excinfo.value.message or "v1" in excinfo.value.message


class TestWirePath:
    def test_append_round_trip_and_service_dispatch(self, quad_polygon):
        service = GeoService()
        dataset = build_dataset(make_base(), "geoblock")
        service.register("taxi", dataset)
        rows = make_rows(10)
        request = AppendRequest(rows=rows, dataset="taxi")
        assert AppendRequest.from_dict(request.to_dict()).to_dict() == request.to_dict()
        envelope = service.run_dict(request.to_dict())
        assert envelope["ok"] is True
        assert envelope["data"]["appended"] == 10
        assert envelope["version"] == 2
        follow_up = service.run_dict(
            {"v": 2, "dataset": "taxi", "region": region_to_geojson(quad_polygon)}
        )
        assert follow_up["version"] == 2

    def test_programmatic_service_append(self):
        service = GeoService()
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        response = service.append("taxi", make_rows(4))
        assert response.appended == 4
        assert response.dataset == "taxi"

    def test_append_unknown_dataset_envelope(self):
        service = GeoService()
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        envelope = service.run_dict(
            {"v": 2, "op": "append", "dataset": "nope", "rows": make_rows(1)}
        )
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "unknown_dataset"


class TestShardedBookkeeping:
    def test_append_marks_dirty_shards(self):
        dataset = build_dataset(make_base(), "sharded")
        handle = dataset.handle
        assert isinstance(handle, ShardedGeoBlock)
        assert handle.dirty_shards() == []
        dataset.append(make_rows(20))
        assert len(handle.dirty_shards()) >= 1
        # Partition stays contiguous after splices.
        bounds = [(shard.lo, shard.hi) for shard in handle.shards]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == handle.num_cells
        for (_, prev_hi), (next_lo, _) in zip(bounds, bounds[1:]):
            assert next_lo == prev_hi
        assert handle.sweep_dirty() >= 1
