"""The result tier on the serving path: wire hits, parity, invalidation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Dataset, GeoService, QueryRequest, TieredCache, region_to_geojson
from repro.cells import EARTH
from repro.core import CachePolicy
from repro.storage import PointTable, Schema, extract

LEVEL = 14

AGG_STRINGS = ["count", "sum:fare", "min:fare", "max:distance", "avg:distance"]

WHERE = {"col": "fare", "op": ">=", "value": 10}


def make_base(count=8000, seed=55):
    rng = np.random.default_rng(seed)
    table = PointTable(
        Schema(["fare", "distance"]),
        rng.normal(-73.95, 0.04, count),
        rng.normal(40.75, 0.03, count),
        {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
    )
    return extract(table, EARTH)


def make_rows(count=60, seed=7):
    rng = np.random.default_rng(seed)
    return [
        {
            "x": float(x),
            "y": float(y),
            "fare": float(fare),
            "distance": float(distance),
        }
        for x, y, fare, distance in zip(
            rng.normal(-73.93, 0.06, count),
            rng.normal(40.74, 0.05, count),
            rng.gamma(3.0, 4.0, count),
            rng.gamma(2.0, 2.0, count),
        )
    ]


def rebuilt_base(base, rows):
    table = base.table
    xs = np.concatenate([table.xs, [row["x"] for row in rows]])
    ys = np.concatenate([table.ys, [row["y"] for row in rows]])
    columns = {
        name: np.concatenate([table.column(name), [row[name] for row in rows]])
        for name in table.schema.names
    }
    return extract(PointTable(table.schema, xs, ys, columns), EARTH)


def build_dataset(base, kind, **kwargs):
    if kind == "adaptive":
        kwargs.setdefault("policy", CachePolicy(threshold=0.5))
    elif kind == "sharded":
        kwargs.setdefault("shard_level", 11)
    return Dataset.build(base, LEVEL, kind, name="taxi", **kwargs)


def assert_identical(got, want) -> None:
    assert got.count == want.count
    assert set(got.values) == set(want.values)
    for key, value in want.values.items():
        if np.isnan(value):
            assert np.isnan(got.values[key])
        else:
            assert got.values[key] == value  # bit-identical, no approx


@pytest.fixture(params=["geoblock", "sharded", "adaptive"])
def kind(request) -> str:
    return request.param


def wire_payload(polygon) -> dict:
    """A fresh wire dict each call -- the JSON round-trip guarantees no
    object identity survives, exactly like a real HTTP request."""
    return json.loads(
        json.dumps(
            {
                "v": 2,
                "dataset": "taxi",
                "region": region_to_geojson(polygon),
                "aggregates": AGG_STRINGS,
            }
        )
    )


class TestWireRepeats:
    def test_identical_wire_payload_hits_both_tiers(self, kind, quad_polygon):
        """The acceptance scenario: re-sending the same GeoJSON (fresh
        parse each time) serves from the result tier with byte-identical
        values -- identity keys gave 0% here."""
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), kind))
        first = service.run_dict(wire_payload(quad_polygon))
        second = service.run_dict(wire_payload(quad_polygon))
        assert first["ok"] and second["ok"]
        assert first["stats"]["cache"]["result_cached"] == 0
        assert second["stats"]["cache"]["result_cached"] == 1
        assert second["data"] == first["data"]
        stats = service.stats()
        assert stats["cache"]["result"]["hits"] == 1
        assert stats["cache"]["covering"]["hits"] == 0  # result hit skips covering

    def test_fresh_polygon_objects_share_covering_tier(self, quad_polygon):
        """Distinct aggregate lists miss the result tier but still share
        the covering computed by the first request."""
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        service.run_dict(wire_payload(quad_polygon))
        other = wire_payload(quad_polygon)
        other["aggregates"] = ["count"]
        envelope = service.run_dict(other)
        assert envelope["stats"]["cache"]["result_cached"] == 0
        assert envelope["stats"]["cache"]["covering_cached"] == 1

    def test_count_only_and_select_do_not_collide(self, quad_polygon):
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        select = wire_payload(quad_polygon)
        count = wire_payload(quad_polygon)
        count["hints"] = {"count_only": True}
        first = service.run_dict(select)
        counted = service.run_dict(count)
        assert counted["stats"]["cache"]["result_cached"] == 0
        assert counted["data"]["values"] == {}
        assert counted["data"]["count"] == first["data"]["count"]
        # And the count path caches independently.
        again = service.run_dict(count)
        assert again["stats"]["cache"]["result_cached"] == 1
        assert again["data"]["count"] == counted["data"]["count"]

    def test_mode_is_part_of_the_key(self, quad_polygon):
        """Scalar and vector folds are distinct rounding sequences; a
        vector-cached answer must never serve a scalar request."""
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        service.run_dict(wire_payload(quad_polygon))
        scalar = wire_payload(quad_polygon)
        scalar["hints"] = {"mode": "scalar"}
        envelope = service.run_dict(scalar)
        assert envelope["stats"]["cache"]["result_cached"] == 0

    def test_run_batch_members_probe_the_result_tier(self, small_polygons):
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        requests = [
            QueryRequest(region=polygon, aggregates=AGG_STRINGS, dataset="taxi")
            for polygon in small_polygons[:4]
        ]
        cold = service.run_batch(requests)
        warm = service.run_batch(
            [
                QueryRequest(
                    region=json.loads(json.dumps(region_to_geojson(polygon))),
                    aggregates=AGG_STRINGS,
                    dataset="taxi",
                )
                for polygon in small_polygons[:4]
            ]
        )
        for want, got in zip(cold, warm):
            assert got.stats.result_cached == 1
            assert_identical(got, want)


class TestCacheOnOffParity:
    def test_cached_answers_equal_uncached_execution(self, kind, small_polygons):
        """The acceptance gate: with the result tier on, warm answers
        are bit-identical to a cache-off dataset over the same data, on
        every block kind."""
        base = make_base()
        cached = build_dataset(base, kind, cache=TieredCache())
        uncached = build_dataset(base, kind, result_cache=False)
        for polygon in small_polygons:
            request = QueryRequest(region=polygon, aggregates=AGG_STRINGS)
            cold = cached.query(request)
            warm = cached.query(
                QueryRequest(
                    region=json.loads(json.dumps(region_to_geojson(polygon))),
                    aggregates=AGG_STRINGS,
                )
            )
            plain = uncached.query(request)
            assert warm.stats.result_cached == 1
            assert_identical(warm, cold)
            assert_identical(warm, plain)

    def test_result_cache_off_never_probes(self, quad_polygon):
        cache = TieredCache()
        dataset = build_dataset(make_base(), "geoblock", cache=cache, result_cache=False)
        request = QueryRequest(region=quad_polygon, aggregates=AGG_STRINGS)
        dataset.query(request)
        dataset.query(request)
        assert len(cache.results) == 0
        assert cache.results.hits == 0 and cache.results.misses == 0


class TestInvalidation:
    def test_append_invalidates_and_matches_cold_rebuild(self, kind, small_polygons):
        """Warm the result tier, append, re-query: every answer must be
        bit-identical to a cold-cache rebuild over the combined rows --
        served stale entries would fail exactly here."""
        base = make_base()
        dataset = build_dataset(base, kind, cache=TieredCache())
        rows = make_rows()
        requests = [
            QueryRequest(region=polygon, aggregates=AGG_STRINGS)
            for polygon in small_polygons[:6]
        ]
        warmed = [dataset.query(request) for request in requests]
        for request, want in zip(requests, warmed):
            hit = dataset.query(request)
            assert hit.stats.result_cached == 1
            assert_identical(hit, want)
        dataset.append(rows)
        fresh = build_dataset(rebuilt_base(base, rows), kind, result_cache=False)
        for request in requests:
            got = dataset.query(request)
            assert got.stats.result_cached == 0  # version bump = lazy invalidation
            assert got.version == 2
            want = fresh.query(request)
            assert got.count == want.count
            for key, value in want.values.items():
                if np.isnan(value):
                    assert np.isnan(got.values[key])
                else:
                    assert got.values[key] == pytest.approx(value, rel=1e-12)

    def test_append_invalidates_through_views(self, kind, small_polygons):
        """Views share the root's token and advance their version in
        lockstep, so an append invalidates the view's warm entries too."""
        base = make_base()
        dataset = build_dataset(base, kind, cache=TieredCache())
        rows = make_rows()
        request = QueryRequest(
            region=small_polygons[0], aggregates=AGG_STRINGS, where=WHERE
        )
        warm = dataset.query(request)
        hit = dataset.query(request)
        assert hit.stats.result_cached == 1
        assert_identical(hit, warm)
        dataset.append(rows)
        got = dataset.query(request)
        assert got.stats.result_cached == 0
        fresh = build_dataset(rebuilt_base(base, rows), kind, result_cache=False)
        want = fresh.query(request)
        assert got.count == want.count
        for key, value in want.values.items():
            if np.isnan(value):
                assert np.isnan(got.values[key])
            else:
                assert got.values[key] == pytest.approx(value, rel=1e-12)

    def test_append_through_another_facade_invalidates(self, quad_polygon):
        """The version key lives on the aggregates, not the serving
        facade: a second Dataset wrapping the same handle must not keep
        serving its warm entries after the first facade appends."""
        base = make_base()
        writer = build_dataset(base, "geoblock", cache=TieredCache())
        reader = Dataset(writer.handle, name="taxi", cache=TieredCache())
        request = QueryRequest(region=quad_polygon, aggregates=AGG_STRINGS)
        before = reader.query(request)
        assert reader.query(request).stats.result_cached == 1
        writer.append(make_rows(seed=3))
        after = reader.query(request)
        assert after.stats.result_cached == 0
        uncached = Dataset(writer.handle, result_cache=False).query(request)
        assert_identical(after, uncached)
        assert after.count != before.count or after.values != before.values

    def test_explicit_invalidate_drops_entries(self, quad_polygon):
        cache = TieredCache()
        service = GeoService(cache=cache)
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        service.run_dict(wire_payload(quad_polygon))
        assert len(cache.results) == 1
        assert service.invalidate("taxi") == 1
        assert len(cache.results) == 0
        envelope = service.run_dict(wire_payload(quad_polygon))
        assert envelope["stats"]["cache"]["result_cached"] == 0


class TestTelemetry:
    def test_service_stats_shape(self, quad_polygon):
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        service.run_dict(wire_payload(quad_polygon))
        service.run_dict(wire_payload(quad_polygon))
        stats = service.stats()
        for tier in ("covering", "result"):
            assert set(stats["cache"][tier]) == {
                "hits",
                "misses",
                "evictions",
                "entries",
                "bytes",
                "hit_rate",
            }
        assert stats["cache"]["result"]["entries"] == 1
        assert stats["cache"]["result"]["bytes"] > 0
        assert stats["datasets"]["taxi"] == {
            "version": 1,
            "result_cache": True,
            "materialized": 0,
            "routing": {
                "queries": 0,  # plain (unsharded) block: nothing routed
                "shards_total": 0,
                "shards_pruned": 0,
                "pruning_rate": 0.0,
            },
        }
        assert stats["mv"]["views"] == 0
        assert stats["mv"]["misses"] == 2

    def test_routing_counters_on_sharded_dataset(self, quad_polygon):
        service = GeoService(cache=TieredCache())
        service.register(
            "taxi", Dataset.build(make_base(), LEVEL, "sharded", name="taxi", shard_count=8)
        )
        first = service.run_dict(wire_payload(quad_polygon))
        assert first["ok"]
        shards = first["stats"]["shards"]
        assert shards["total"] == 8
        assert 0 <= shards["pruned"] < shards["total"]
        routing = service.stats()["datasets"]["taxi"]["routing"]
        assert routing["queries"] == 1
        assert routing["shards_total"] == 8
        assert routing["shards_pruned"] == shards["pruned"]
        assert routing["pruning_rate"] == pytest.approx(shards["pruned"] / 8)
        # A result-tier hit replays the original execution's counters but
        # does not inflate the dataset's routing totals.
        second = service.run_dict(wire_payload(quad_polygon))
        assert second["stats"]["cache"]["result_cached"] == 1
        assert second["stats"]["shards"] == shards
        assert service.stats()["datasets"]["taxi"]["routing"]["queries"] == 1

    def test_per_response_cache_block(self, quad_polygon):
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        envelope = service.run_dict(wire_payload(quad_polygon))
        cache_block = envelope["stats"]["cache"]
        assert set(cache_block) == {"covering_cached", "result_cached", "trie_hits"}
        assert envelope["stats"]["mv"] == {"cached": 0}
        # v2 responses dropped the flat legacy mirror keys in favour of
        # the structured blocks; only v1 up-converts still emit them.
        assert "covering_cached" not in envelope["stats"]
        assert "cache_hits" not in envelope["stats"]

    def test_v1_response_keeps_flat_legacy_stats(self, quad_polygon, monkeypatch):
        from repro.api import request as request_module

        # Both mirrors warn once per process; reset so this test owns them.
        monkeypatch.setattr(request_module, "_v1_warned", False)
        monkeypatch.setattr(request_module, "_legacy_stats_warned", False)
        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        payload = wire_payload(quad_polygon)
        del payload["v"]
        with pytest.warns(DeprecationWarning):
            envelope = service.run_dict(payload)
        assert envelope["ok"]
        cache_block = envelope["stats"]["cache"]
        assert envelope["stats"]["covering_cached"] == cache_block["covering_cached"]
        assert envelope["stats"]["cache_hits"] == cache_block["trie_hits"]

    def test_stats_follow_privately_bound_datasets(self, quad_polygon):
        """A dataset bound to its own cache at build time keeps it when
        registered on an unconfigured service -- and stats() must report
        that cache's traffic, not the idle process-wide one."""
        private = TieredCache()
        dataset = build_dataset(make_base(), "geoblock", cache=private)
        service = GeoService()
        service.register("taxi", dataset)
        service.run_dict(wire_payload(quad_polygon))
        service.run_dict(wire_payload(quad_polygon))
        stats = service.stats()
        assert stats["cache"]["result"]["hits"] == 1
        assert stats["cache"]["result"]["entries"] == 1
        assert dataset.cache_scope.cache is private

    def test_private_service_cache_is_isolated(self, quad_polygon):
        from repro.cache import get_cache

        service = GeoService(cache=TieredCache())
        service.register("taxi", build_dataset(make_base(), "geoblock"))
        service.run_dict(wire_payload(quad_polygon))
        assert get_cache().results.misses == 0
        assert get_cache().coverings.misses == 0
        assert service.cache.results.misses == 1
