"""Request/response wire round-trips and strict parsing."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ApiError,
    QueryRequest,
    QueryResponse,
    QueryStats,
    format_agg,
    parse_agg,
)
from repro.api.errors import BAD_AGGREGATE, BAD_HINT, BAD_REQUEST
from repro.core import AggSpec
from repro.geometry import BoundingBox, MultiPolygon, Polygon

SQUARE = [[-74.0, 40.7], [-73.9, 40.7], [-73.9, 40.8], [-74.0, 40.8], [-74.0, 40.7]]

REGIONS = [
    Polygon.regular(-73.95, 40.75, 0.05, 6),
    MultiPolygon([Polygon.regular(-73.95, 40.75, 0.02, 4), Polygon.regular(-73.8, 40.6, 0.02, 5)]),
    BoundingBox(-74.0, 40.7, -73.9, 40.8),
    {"type": "Polygon", "coordinates": [SQUARE]},
    {"bbox": [-74.0, 40.7, -73.9, 40.8]},
]

AGG_COMBOS = [
    None,  # default: count
    ["count"],
    ["count:*"],
    ["sum:fare"],
    ["count", "sum:fare", "avg:fare", "min:fare", "max:distance"],
    [AggSpec("avg", "fare"), "count"],  # mixed programmatic + wire specs
]

HINT_COMBOS = [
    {},
    {"mode": "vector"},
    {"mode": "scalar"},
    {"cache": False},
    {"count_only": True},
    {"mode": "scalar", "cache": False, "count_only": True},
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize("region", REGIONS)
    @pytest.mark.parametrize("aggs", AGG_COMBOS)
    def test_region_and_aggregate_combinations(self, region, aggs):
        request = (
            QueryRequest(region=region)
            if aggs is None
            else QueryRequest(region=region, aggregates=aggs)
        )
        wire = request.to_dict()
        assert QueryRequest.from_dict(wire).to_dict() == wire
        json.dumps(wire)  # JSON-compatible by construction

    @pytest.mark.parametrize("region", REGIONS)
    @pytest.mark.parametrize("hints", HINT_COMBOS)
    def test_hint_combinations(self, region, hints):
        request = QueryRequest(
            region=region,
            dataset="taxi",
            mode=hints.get("mode"),
            cache=hints.get("cache", True),
            count_only=hints.get("count_only", False),
        )
        wire = request.to_dict()
        parsed = QueryRequest.from_dict(wire)
        assert parsed.to_dict() == wire
        assert parsed.mode == request.mode
        assert parsed.cache == request.cache
        assert parsed.count_only == request.count_only
        assert parsed.dataset == "taxi"

    def test_defaults_are_omitted_from_wire_form(self):
        wire = QueryRequest(region=REGIONS[0]).to_dict()
        assert set(wire) == {"v", "region", "aggregates"}
        assert wire["v"] == 2
        assert wire["aggregates"] == ["count"]

    def test_bbox_region_keeps_compact_form(self):
        wire = QueryRequest(region={"bbox": [0.0, 0.0, 1.0, 1.0]}).to_dict()
        assert wire["region"] == {"bbox": [0.0, 0.0, 1.0, 1.0]}

    def test_target_is_stable_across_calls(self):
        """Covering caches key on region identity, so a reused request
        must resolve its bbox to the same polygon object every time."""
        request = QueryRequest(region=BoundingBox(0.0, 0.0, 1.0, 1.0))
        assert request.target is request.target


class TestStrictParsing:
    def test_missing_region(self):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest.from_dict({"aggregates": ["count"]})
        assert excinfo.value.code == BAD_REQUEST

    def test_unknown_top_level_key(self):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest.from_dict({"region": {"bbox": [0, 0, 1, 1]}, "aggrgates": ["count"]})
        assert excinfo.value.code == BAD_REQUEST
        assert excinfo.value.details["unknown"] == ["aggrgates"]

    def test_unknown_hint(self):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest.from_dict(
                {"region": {"bbox": [0, 0, 1, 1]}, "hints": {"mod": "scalar"}}
            )
        assert excinfo.value.code == BAD_HINT

    def test_bad_mode(self):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest.from_dict(
                {"region": {"bbox": [0, 0, 1, 1]}, "hints": {"mode": "turbo"}}
            )
        assert excinfo.value.code == BAD_HINT

    @pytest.mark.parametrize("spec", ["", "median:fare", "sum", "sum:", 7, None])
    def test_bad_aggregate_specs(self, spec):
        with pytest.raises(ApiError) as excinfo:
            parse_agg(spec)
        assert excinfo.value.code == BAD_AGGREGATE

    def test_non_dict_payload(self):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest.from_dict("region=...")
        assert excinfo.value.code == BAD_REQUEST


class TestAggSpecStrings:
    @pytest.mark.parametrize(
        ("text", "spec"),
        [
            ("count", AggSpec("count")),
            ("count:*", AggSpec("count")),
            ("sum:fare", AggSpec("sum", "fare")),
            ("AVG: tip_rate ", AggSpec("avg", "tip_rate")),
        ],
    )
    def test_parse(self, text, spec):
        assert parse_agg(text) == spec

    def test_format_is_inverse_of_parse(self):
        for text in ("count", "sum:fare", "avg:tip_rate", "min:x", "max:y"):
            assert format_agg(parse_agg(text)) == text


class TestResponseRoundTrip:
    def test_success_envelope(self):
        response = QueryResponse(
            values={"count(*)": 12.0, "sum(fare)": 88.5},
            count=12,
            stats=QueryStats(cells_probed=9, cache_hits=4, latency_ms=1.25),
            dataset="taxi",
        )
        wire = response.to_dict()
        assert wire["ok"] is True
        back = QueryResponse.from_dict(json.loads(json.dumps(wire)))
        assert back == response

    def test_error_envelope_reraises(self):
        envelope = {
            "ok": False,
            "error": {"code": "unknown_dataset", "message": "unknown dataset 'x'"},
        }
        with pytest.raises(ApiError) as excinfo:
            QueryResponse.from_dict(envelope)
        assert excinfo.value.code == "unknown_dataset"

    def test_unrecognised_error_code_still_raises_api_error(self):
        """A server with a newer code set must surface as ApiError on
        this client, never as a ValueError from code validation."""
        envelope = {"ok": False, "error": {"code": "rate_limited", "message": "slow down"}}
        with pytest.raises(ApiError) as excinfo:
            QueryResponse.from_dict(envelope)
        assert excinfo.value.code == "internal"
        assert excinfo.value.details["code"] == "rate_limited"

    def test_getitem_reads_values(self):
        response = QueryResponse(values={"sum(fare)": 3.5}, count=1)
        assert response["sum(fare)"] == 3.5
