"""Query v2: grouped requests, filtered views, envelopes, deprecation."""

from __future__ import annotations

import json
import math
import warnings

import numpy as np
import pytest

import repro.api.request as request_module
from repro.api import (
    ApiError,
    Dataset,
    GeoService,
    QueryRequest,
    QueryResponse,
    col,
    features_from_geojson,
    parse_features,
    region_to_geojson,
)
from repro.api.errors import (
    BAD_PREDICATE,
    BAD_REGION,
    BAD_REQUEST,
    UNKNOWN_COLUMN,
    UNSUPPORTED_OP,
)
from repro.core import AggSpec, CachePolicy

LEVEL = 14

AGG_STRINGS = ["count", "sum:fare", "min:fare", "max:distance", "avg:distance"]

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
    AggSpec("avg", "distance"),
]


def feature(polygon, name=None, **extra):
    payload = {
        "type": "Feature",
        "properties": {"name": name} if name else {},
        "geometry": region_to_geojson(polygon),
    }
    payload.update(extra)
    return payload


def collection(polygons, names=None):
    names = names or [f"zone_{index}" for index in range(len(polygons))]
    return {
        "type": "FeatureCollection",
        "features": [feature(polygon, name) for polygon, name in zip(polygons, names)],
    }


@pytest.fixture(params=["geoblock", "sharded", "adaptive"])
def dataset(request, small_base, small_polygons) -> Dataset:
    kind = request.param
    if kind == "adaptive":
        built = Dataset.build(
            small_base, LEVEL, kind, name="small", policy=CachePolicy(threshold=0.5)
        )
        # Populate the trie so grouped execution exercises cache hits.
        for polygon in small_polygons:
            built.handle.select(polygon, AGGS)
        built.handle.adapt()
    elif kind == "sharded":
        built = Dataset.build(small_base, LEVEL, kind, name="small", shard_level=11)
    else:
        built = Dataset.build(small_base, LEVEL, kind, name="small")
    return built


class TestFeatureParsing:
    def test_named_features(self, small_polygons):
        named = features_from_geojson(collection(small_polygons[:3], ["a", "b", "c"]))
        assert [name for name, _ in named] == ["a", "b", "c"]

    def test_id_and_positional_fallbacks(self, small_polygons):
        payload = {
            "type": "FeatureCollection",
            "features": [
                feature(small_polygons[0], "named"),
                feature(small_polygons[1], None, id=17),
                feature(small_polygons[2], None),
                region_to_geojson(small_polygons[3]),  # bare geometry member
            ],
        }
        named = features_from_geojson(payload)
        assert [name for name, _ in named] == ["named", "17", "feature_2", "feature_3"]

    def test_empty_collection_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            features_from_geojson({"type": "FeatureCollection", "features": []})
        assert excinfo.value.code == BAD_REGION

    def test_mixed_geometry_types(self, small_polygons):
        from repro.geometry import MultiPolygon

        multi = MultiPolygon([small_polygons[0], small_polygons[1]])
        payload = {
            "type": "FeatureCollection",
            "features": [feature(small_polygons[2], "poly"), feature(multi, "multi")],
        }
        named = features_from_geojson(payload)
        assert isinstance(named[1][1], MultiPolygon)

    def test_unsupported_member_geometry_blames_feature(self, small_polygons):
        payload = {
            "type": "FeatureCollection",
            "features": [
                feature(small_polygons[0], "ok"),
                {"type": "Feature", "properties": {}, "geometry": {"type": "Point", "coordinates": [0, 1]}},
            ],
        }
        with pytest.raises(ApiError) as excinfo:
            features_from_geojson(payload)
        assert excinfo.value.code == BAD_REGION
        assert excinfo.value.details.get("feature") == 1

    def test_named_region_list_with_bbox(self):
        named = parse_features(
            [
                {"name": "box", "region": {"bbox": [-74.0, 40.7, -73.9, 40.8]}},
                {"region": {"bbox": [-74.1, 40.6, -74.0, 40.7]}},
            ]
        )
        assert [name for name, _ in named] == ["box", "feature_1"]

    def test_duplicate_names_rejected(self, small_polygons):
        with pytest.raises(ApiError) as excinfo:
            parse_features(collection(small_polygons[:2], ["dup", "dup"]))
        assert excinfo.value.code == BAD_REGION

    @pytest.mark.parametrize(
        "payload",
        [
            7,
            {"type": "GeometryCollection"},
            [],
            [{"name": "x"}],  # missing region
            [{"name": "x", "region": {"bbox": [0, 0, 1, 1]}, "extra": 1}],
            [{"name": 5, "region": {"bbox": [0, 0, 1, 1]}}],
            ["not-a-member"],
        ],
    )
    def test_malformed_group_by(self, payload):
        with pytest.raises(ApiError):
            parse_features(payload)


class TestGroupByParity:
    def test_grouped_bit_identical_to_sequential_v1(self, dataset, small_polygons):
        """The acceptance gate: one v2 group-by over N features answers
        bit-identically to N sequential v1 single-region requests, and
        the grouped pass reuses the planner's covering cache across
        features (asserted via QueryStats.covering_cached)."""
        fc = collection(small_polygons)
        grouped_request = QueryRequest(
            group_by=fc, aggregates=AGG_STRINGS, dataset="small"
        )
        # Sequential v1 requests over the same compiled regions (the
        # dashboard's old N-request pattern; same identities warm the
        # planner's covering LRU).
        sequential = [
            dataset.query(QueryRequest(region=target, aggregates=AGG_STRINGS, dataset="small"))
            for _, target in grouped_request.feature_targets
        ]
        grouped = dataset.query(grouped_request)
        assert grouped.groups is not None and len(grouped.groups) == len(sequential)
        for row, want in zip(grouped.groups, sequential):
            assert row.count == want.count
            assert set(row.values) == set(want.values)
            for key, value in want.values.items():
                if np.isnan(value):
                    assert np.isnan(row.values[key])
                else:
                    assert row.values[key] == value  # exact, not approx
        assert grouped.stats.covering_cached >= 1
        assert grouped.stats.covering_cached == len(small_polygons)

    def test_rollup_folds_per_feature_rows(self, dataset, small_polygons):
        fc = collection(small_polygons[:5])
        response = dataset.query(
            QueryRequest(group_by=fc, aggregates=AGG_STRINGS, dataset="small")
        )
        rows = response.groups
        assert response.count == sum(row.count for row in rows)
        assert response.values["sum(fare)"] == math.fsum(
            row.values["sum(fare)"] for row in rows
        )
        finite_mins = [
            row.values["min(fare)"] for row in rows if not np.isnan(row.values["min(fare)"])
        ]
        assert response.values["min(fare)"] == min(finite_mins)
        weighted = math.fsum(
            row.values["avg(distance)"] * row.count for row in rows if row.count
        )
        assert response.values["avg(distance)"] == pytest.approx(
            weighted / response.count, rel=1e-12
        )

    def test_grouped_count_only(self, dataset, small_polygons):
        fc = collection(small_polygons[:4])
        response = dataset.query(
            QueryRequest(group_by=fc, dataset="small", count_only=True)
        )
        counts = [dataset.handle.count(target) for _, target in
                  QueryRequest(group_by=fc).feature_targets]
        assert [row.count for row in response.groups] == counts
        assert response.count == sum(counts)
        assert response.values == {}

    def test_group_lookup_by_name(self, dataset, small_polygons):
        fc = collection(small_polygons[:3], ["a", "b", "c"])
        response = dataset.query(QueryRequest(group_by=fc, dataset="small"))
        assert response.group("b").count == response.groups[1].count
        with pytest.raises(KeyError):
            response.group("missing")

    def test_grouped_in_run_batch_preserves_order(self, dataset, small_polygons):
        requests = [
            QueryRequest(region=small_polygons[0], dataset="small"),
            QueryRequest(group_by=collection(small_polygons[1:4]), dataset="small"),
            QueryRequest(region=small_polygons[4], dataset="small"),
        ]
        responses = dataset.run_batch(requests)
        assert len(responses) == 3
        assert responses[0].groups is None
        assert len(responses[1].groups) == 3
        assert responses[0].count == dataset.handle.count(requests[0].target)


class TestFilteredViews:
    WHERE = {"col": "distance", "op": ">=", "value": 4}

    def test_where_matches_fresh_filtered_build(self, dataset, small_base, small_polygons):
        """A 'where' query answers exactly like a dataset built with the
        predicate from scratch (the paper's per-filter GeoBlock)."""
        fresh = Dataset.build(
            small_base,
            LEVEL,
            dataset.kind,
            predicate=col("distance") >= 4,
            shard_level=11 if dataset.kind == "sharded" else None,
        )
        for polygon in small_polygons[:4]:
            got = dataset.query(
                QueryRequest(region=polygon, aggregates=AGG_STRINGS, dataset="small", where=self.WHERE)
            )
            want = fresh.query(QueryRequest(region=polygon, aggregates=AGG_STRINGS))
            assert got.count == want.count
            for key, value in want.values.items():
                if np.isnan(value):
                    assert np.isnan(got.values[key])
                else:
                    assert got.values[key] == value

    def test_view_is_cached_per_predicate_key(self, dataset):
        first = dataset.view(self.WHERE)
        second = dataset.view(col("distance") >= 4)
        assert first is second  # wire dict and expression share the key
        assert dataset.view({"col": "distance", "op": ">=", "value": 5}) is not first

    def test_view_keeps_kind_and_level(self, dataset):
        view = dataset.view(self.WHERE)
        assert view.kind == dataset.kind
        assert view.level == dataset.level
        assert view.is_view and not dataset.is_view
        if dataset.kind == "sharded":
            assert view.handle.shard_level == dataset.handle.shard_level

    def test_view_of_view_composes_conjunctively(self, dataset):
        view = dataset.view(self.WHERE)
        nested = view.view({"col": "fare", "op": "<", "value": 30})
        composed = dataset.view((col("distance") >= 4) & (col("fare") < 30))
        assert nested is composed

    def test_nested_view_on_filtered_root_shares_cache_key(self, small_base):
        """On a root built with its own predicate, a nested view and
        the equivalent direct view must resolve to ONE cached block --
        composing the root predicate twice would build and cache a
        duplicate (code-review regression)."""
        root = Dataset.build(small_base, LEVEL, name="rich", predicate=col("fare") > 1)
        nested = root.view(col("distance") >= 4).view(col("fare") < 30)
        direct = root.view((col("distance") >= 4) & (col("fare") < 30))
        assert nested is direct
        assert len(root._views) == 2  # the intermediate view + the composed one

    def test_unknown_column_rejected(self, dataset):
        with pytest.raises(ApiError) as excinfo:
            dataset.view({"col": "surge_fee", "op": ">", "value": 0})
        assert excinfo.value.code == UNKNOWN_COLUMN

    def test_malformed_predicate_maps_to_bad_predicate(self, dataset, small_polygons):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest(
                region=small_polygons[0],
                where={"col": "fare", "op": "LIKE", "value": 1},
            )
        assert excinfo.value.code == BAD_PREDICATE

    def test_root_build_predicate_composes_with_where(self, small_base, small_polygons):
        """A dataset built with its own filter must answer 'where'
        queries over the *conjunction* -- never rows its own predicate
        excludes (code-review regression)."""
        filtered_root = Dataset.build(
            small_base, LEVEL, name="rich", predicate=col("fare") > 20
        )
        combined = Dataset.build(
            small_base, LEVEL, predicate=(col("fare") > 20) & (col("distance") >= 4)
        )
        for polygon in small_polygons[:4]:
            got = filtered_root.query(
                QueryRequest(region=polygon, dataset="rich", where=self.WHERE)
            )
            want = combined.query(QueryRequest(region=polygon))
            assert got.count == want.count

    def test_near_identical_predicates_get_distinct_views(self, small_base):
        """6-significant-digit display collisions must not alias views
        (code-review regression)."""
        dataset = Dataset.build(small_base, LEVEL, name="small")
        first = dataset.view({"col": "fare", "op": ">=", "value": 1234567.0})
        second = dataset.view({"col": "fare", "op": ">=", "value": 1234568.0})
        assert first is not second

    def test_view_cache_is_bounded_lru(self, small_base):
        from repro.api.dataset import MAX_VIEWS

        dataset = Dataset.build(small_base, LEVEL, name="small")
        first = dataset.view({"col": "fare", "op": ">=", "value": 0.0})
        for value in range(1, MAX_VIEWS + 4):
            dataset.view({"col": "fare", "op": ">=", "value": float(value)})
        assert len(dataset._views) == MAX_VIEWS
        # The first view was least recently used and evicted; asking
        # again rebuilds an equivalent (but fresh) dataset.
        rebuilt = dataset.view({"col": "fare", "op": ">=", "value": 0.0})
        assert rebuilt is not first
        assert rebuilt.block.predicate.key == first.block.predicate.key

    def test_view_without_base_data_unsupported(self, small_block, small_polygons):
        bare = Dataset(small_block, name="bare")  # no base retained
        with pytest.raises(ApiError) as excinfo:
            bare.query(QueryRequest(region=small_polygons[0], where=self.WHERE))
        assert excinfo.value.code == UNSUPPORTED_OP

    def test_where_with_group_by(self, dataset, small_base, small_polygons):
        fc = collection(small_polygons[:3])
        got = dataset.query(
            QueryRequest(group_by=fc, aggregates=["count", "sum:fare"], dataset="small", where=self.WHERE)
        )
        fresh = Dataset.build(small_base, LEVEL, predicate=col("distance") >= 4)
        for row, (_, target) in zip(got.groups, QueryRequest(group_by=fc).feature_targets):
            want = fresh.query(QueryRequest(region=target, aggregates=["count", "sum:fare"]))
            assert row.count == want.count


class TestEnvelopes:
    def test_v2_request_round_trip(self, small_polygons):
        request = QueryRequest(
            group_by=collection(small_polygons[:2], ["a", "b"]),
            aggregates=["count", "sum:fare"],
            dataset="taxi",
            where={"col": "fare", "op": ">", "value": 10},
        )
        wire = request.to_dict()
        assert wire["v"] == 2
        assert QueryRequest.from_dict(wire).to_dict() == wire
        json.dumps(wire)

    def test_region_and_group_by_are_exclusive(self, small_polygons):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest(region=small_polygons[0], group_by=collection(small_polygons[:2]))
        assert excinfo.value.code == BAD_REQUEST
        with pytest.raises(ApiError):
            QueryRequest()

    def test_unsupported_version_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            QueryRequest.from_dict({"v": 3, "region": {"bbox": [0, 0, 1, 1]}})
        assert excinfo.value.code == BAD_REQUEST

    def test_v2_keys_need_v2_envelope(self, small_polygons):
        payload = {
            "region": region_to_geojson(small_polygons[0]),
            "where": {"col": "fare", "op": ">", "value": 1},
        }
        with pytest.raises(ApiError) as excinfo:
            QueryRequest.from_dict(payload)
        assert excinfo.value.code == BAD_REQUEST
        assert "v2" in excinfo.value.message

    def test_v1_envelope_cannot_carry_v2_keys(self, small_polygons):
        payload = {
            "v": 1,
            "region": region_to_geojson(small_polygons[0]),
            "group_by": collection(small_polygons[:2]),
        }
        with pytest.raises(ApiError):
            QueryRequest.from_dict(payload)

    def test_grouped_response_round_trip(self, dataset, small_polygons):
        response = dataset.query(
            QueryRequest(group_by=collection(small_polygons[:3]), dataset="small")
        )
        wire = json.loads(json.dumps(response.to_dict()))
        back = QueryResponse.from_dict(wire)
        assert back == response
        assert back.version == dataset.version
        assert wire["v"] == 2


class TestDeprecation:
    @pytest.fixture(autouse=True)
    def reset_warning_flag(self):
        request_module._v1_warned = False
        # The flat legacy-stats mirror has its own one-shot warning
        # (tested in test_result_cache); keep it quiet here so these
        # tests isolate the versionless-payload warning.
        legacy = request_module._legacy_stats_warned
        request_module._legacy_stats_warned = True
        yield
        request_module._v1_warned = False
        request_module._legacy_stats_warned = legacy

    def test_v1_run_dict_warns_once_and_answers_identically(self, small_block, quad_polygon):
        service = GeoService()
        service.register("only", Dataset(small_block))
        v1 = {"region": region_to_geojson(quad_polygon), "aggregates": ["count", "sum:fare"]}
        v2 = dict(v1, v=2)
        with pytest.warns(DeprecationWarning, match="versionless"):
            first = service.run_dict(v1)
        # Once per process: the second v1 payload stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            second = service.run_dict(v1)
            modern = service.run_dict(v2)
        assert first["data"] == second["data"] == modern["data"]

    def test_v2_payload_never_warns(self, small_block, quad_polygon):
        service = GeoService()
        service.register("only", Dataset(small_block))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            envelope = service.run_dict(
                {"v": 2, "region": region_to_geojson(quad_polygon)}
            )
        assert envelope["ok"] is True

    def test_malformed_versionless_payload_does_not_consume_the_warning(
        self, small_block, quad_polygon
    ):
        """Only a payload that actually parses as a v1 query is a
        deprecated v1 query; garbage must not spend the one-shot
        warning (code-review regression)."""
        service = GeoService()
        service.register("only", Dataset(small_block))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bad_single = service.run_dict({"regio": "typo"})
            bad_batch = service.run_batch_dict([{"regio": "typo"}])
        assert bad_single["ok"] is False
        assert bad_batch[0]["ok"] is False
        with pytest.warns(DeprecationWarning):
            service.run_dict({"region": region_to_geojson(quad_polygon)})

    def test_versionless_append_does_not_consume_the_warning(self, small_block, quad_polygon):
        """Appends have no v1 form -- a versionless append is a plain
        client error and must leave the once-per-process deprecation
        warning for an actual v1 query (code-review regression)."""
        service = GeoService()
        service.register("only", Dataset(small_block))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rejected = service.run_dict(
                {"op": "append", "rows": [{"x": 0.0, "y": 0.0}]}
            )
        assert rejected["ok"] is False
        with pytest.warns(DeprecationWarning):
            service.run_dict({"region": region_to_geojson(quad_polygon)})
