"""GeoService parity: wire queries answer exactly like direct blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ApiError, Dataset, GeoService, QueryRequest, requests_from_workload
from repro.api.errors import UNKNOWN_COLUMN, UNKNOWN_DATASET
from repro.api.geojson import region_to_geojson
from repro.core import AdaptiveGeoBlock, AggSpec, CachePolicy, GeoBlock
from repro.engine.shards import ShardedGeoBlock
from repro.workloads import base_workload

LEVEL = 14

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
    AggSpec("avg", "distance"),
]

AGG_STRINGS = ["count", "sum:fare", "min:fare", "max:distance", "avg:distance"]


def assert_values_equal(got: dict, want: dict) -> None:
    assert set(got) == set(want)
    for key, value in want.items():
        if np.isnan(value):
            assert np.isnan(got[key])
        else:
            assert got[key] == value


@pytest.fixture(scope="module", params=["geoblock", "sharded", "adaptive"])
def kind(request) -> str:
    return request.param


@pytest.fixture(scope="module")
def handle(kind, small_base, small_polygons):
    """One block per kind; the adaptive one is warmed and adapted so
    cache hits actually occur."""
    if kind == "geoblock":
        return GeoBlock.build(small_base, LEVEL)
    if kind == "sharded":
        return ShardedGeoBlock.build(small_base, LEVEL, shard_level=11)
    adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=0.5))
    for polygon in small_polygons:
        adaptive.select(polygon, AGGS)
    adaptive.adapt()
    return adaptive


@pytest.fixture(scope="module")
def service(handle) -> GeoService:
    geo_service = GeoService()
    geo_service.register("small", Dataset(handle))
    return geo_service


class TestSingleQueryParity:
    # Deliberately exercises the versionless v1 path (flat legacy stats
    # keys included), so both one-shot deprecation warnings fire here.
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_json_dict_select_matches_direct(self, service, handle, small_polygons):
        for polygon in small_polygons:
            want = handle.select(polygon, AGGS)
            envelope = service.run_dict(
                {
                    "dataset": "small",
                    "region": region_to_geojson(polygon),
                    "aggregates": AGG_STRINGS,
                }
            )
            assert envelope["ok"] is True
            assert envelope["data"]["count"] == want.count
            assert_values_equal(envelope["data"]["values"], want.values)
            assert envelope["stats"]["cells_probed"] == want.cells_probed
            assert envelope["stats"]["cache_hits"] == want.cache_hits
            assert envelope["stats"]["latency_ms"] >= 0.0

    def test_json_dict_count_matches_direct(self, service, handle, small_polygons):
        for polygon in small_polygons:
            envelope = service.run_dict(
                {
                    "dataset": "small",
                    "region": region_to_geojson(polygon),
                    "hints": {"count_only": True},
                }
            )
            assert envelope["ok"] is True
            assert envelope["data"]["count"] == handle.count(polygon)
            assert envelope["data"]["values"] == {}

    def test_fluent_matches_direct(self, service, handle, quad_polygon):
        dataset = service.dataset("small")
        want = handle.select(quad_polygon, AGGS)
        got = dataset.over(region_to_geojson(quad_polygon)).agg(*AGG_STRINGS).run()
        assert got.count == want.count
        assert_values_equal(got.values, want.values)
        assert dataset.over(region_to_geojson(quad_polygon)).count() == handle.count(quad_polygon)

    def test_scalar_mode_hint_matches_scalar_direct(self, service, handle, quad_polygon):
        want = handle.select(quad_polygon, AGGS)  # vector default
        envelope = service.run_dict(
            {
                "dataset": "small",
                "region": region_to_geojson(quad_polygon),
                "aggregates": AGG_STRINGS,
                "hints": {"mode": "scalar"},
            }
        )
        assert envelope["data"]["count"] == want.count
        # Scalar and vector agree on count/min/max exactly; sums are
        # float-fold-order sensitive, so compare with tolerance.
        for key, value in want.values.items():
            got = envelope["data"]["values"][key]
            if np.isnan(value):
                assert np.isnan(got)
            else:
                assert got == pytest.approx(value, rel=1e-9)
        # The hint must not leak into the dataset's default mode.
        assert service.dataset("small").handle.query_mode == "kernel"


class TestBatchedParity:
    def test_run_batch_matches_direct_run_batch(self, service, handle, small_polygons):
        want = handle.run_batch(small_polygons, aggs=AGGS)
        requests = [
            QueryRequest(region=polygon, aggregates=AGG_STRINGS, dataset="small")
            for polygon in small_polygons
        ]
        got = service.run_batch(requests)
        assert len(got) == len(want)
        for response, result in zip(got, want):
            assert response.count == result.count
            assert_values_equal(response.values, result.values)
            assert response.stats.cells_probed == result.cells_probed
            assert response.stats.cache_hits == result.cache_hits

    def test_run_batch_dict_wire_path(self, service, handle, small_polygons):
        payloads = [
            {"dataset": "small", "region": region_to_geojson(polygon), "aggregates": ["count"]}
            for polygon in small_polygons
        ]
        envelopes = service.run_batch_dict(payloads)
        for envelope, polygon in zip(envelopes, small_polygons):
            assert envelope["ok"] is True
            assert envelope["data"]["count"] == handle.count(polygon)

    def test_mixed_hints_batch_preserves_order(self, service, handle, small_polygons):
        requests = []
        for index, polygon in enumerate(small_polygons):
            if index % 3 == 0:
                requests.append(QueryRequest(region=polygon, dataset="small", count_only=True))
            elif index % 3 == 1:
                requests.append(
                    QueryRequest(region=polygon, dataset="small", aggregates=["sum:fare"])
                )
            else:
                requests.append(
                    QueryRequest(
                        region=polygon, dataset="small", aggregates=["count"], mode="scalar"
                    )
                )
        responses = service.run_batch(requests)
        assert [r.count for r in responses] == [handle.count(p) for p in small_polygons]

    def test_run_workload_api_matches_sequential(self, handle, small_polygons):
        """The experiment harness's serving-path runner agrees with the
        sequential runner (exactly on counts; last-ulp float drift is
        allowed on sharded cross-boundary sums)."""
        from repro.experiments.common import run_workload, run_workload_api

        workload = base_workload(small_polygons, AGGS)
        _, want = run_workload(handle, workload)
        _, got = run_workload_api(Dataset(handle), workload, batch_size=5)
        assert len(got) == len(want)
        for direct, via_api in zip(want, got):
            assert via_api.count == direct.count
            for key, value in direct.values.items():
                if np.isnan(value):
                    assert np.isnan(via_api.values[key])
                else:
                    assert via_api.values[key] == pytest.approx(value, rel=1e-12)

    def test_workload_bridge(self, service, handle, small_polygons):
        workload = base_workload(small_polygons, AGGS)
        requests = requests_from_workload(workload, dataset="small")
        responses = service.run_batch(requests)
        for response, query in zip(responses, workload):
            want = handle.select(query.region, list(query.aggs))
            assert response.count == want.count


class TestHints:
    def test_cache_false_bypasses_trie(self, service, handle, small_polygons):
        polygon = small_polygons[0]
        envelope = service.run_dict(
            {
                "dataset": "small",
                "region": region_to_geojson(polygon),
                "aggregates": AGG_STRINGS,
                "hints": {"cache": False},
            }
        )
        want = handle.block.select(polygon, AGGS) if isinstance(handle, AdaptiveGeoBlock) else handle.select(polygon, AGGS)
        assert envelope["stats"]["cache_hits"] == 0
        assert envelope["data"]["count"] == want.count
        assert_values_equal(envelope["data"]["values"], want.values)


class TestErrors:
    def test_unknown_dataset_envelope(self, service):
        envelope = service.run_dict({"dataset": "nope", "region": {"bbox": [0, 0, 1, 1]}})
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == UNKNOWN_DATASET
        assert "registered" in envelope["error"]["details"]

    def test_unknown_column_envelope(self, service):
        envelope = service.run_dict(
            {
                "dataset": "small",
                "region": {"bbox": [-74.2, 40.5, -73.7, 40.95]},
                "aggregates": ["sum:surge_fee"],
            }
        )
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == UNKNOWN_COLUMN

    def test_malformed_region_envelope(self, service):
        envelope = service.run_dict({"dataset": "small", "region": {"type": "Blob"}})
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "bad_region"

    def test_batch_dict_fails_whole_batch(self, service):
        payloads = [
            {"dataset": "small", "region": {"bbox": [0, 0, 1, 1]}},
            {"dataset": "small", "region": {"type": "Blob"}},
        ]
        envelopes = service.run_batch_dict(payloads)
        assert len(envelopes) == 2
        assert all(envelope["ok"] is False for envelope in envelopes)

    def test_misaddressed_request_rejected_by_dataset(self, handle, small_polygons):
        """A request naming another dataset must not silently execute
        against this one (per-dataset wire endpoints would otherwise
        return wrong-dataset results)."""
        dataset = Dataset(handle, name="taxi")
        with pytest.raises(ApiError) as excinfo:
            dataset.query(QueryRequest(region=small_polygons[0], dataset="weather"))
        assert excinfo.value.code == UNKNOWN_DATASET
        with pytest.raises(ApiError):
            dataset.run_batch([QueryRequest(region=small_polygons[0], dataset="weather")])

    def test_batch_with_unknown_dataset_executes_nothing(self, handle, small_polygons):
        """A bad dataset name fails the whole batch before any member
        runs -- otherwise adaptive datasets would record statistics for
        queries the client sees reported as failed (and re-sends)."""
        service = GeoService()
        service.register("known", Dataset(handle))
        recorded_before = (
            handle.statistics.queries_recorded
            if isinstance(handle, AdaptiveGeoBlock)
            else None
        )
        with pytest.raises(ApiError) as excinfo:
            service.run_batch(
                [
                    QueryRequest(region=small_polygons[0], dataset="known"),
                    QueryRequest(region=small_polygons[1], dataset="missing"),
                ]
            )
        assert excinfo.value.code == UNKNOWN_DATASET
        if recorded_before is not None:
            assert handle.statistics.queries_recorded == recorded_before

    def test_run_raises_outside_envelope_entry_points(self, service):
        with pytest.raises(ApiError):
            service.run({"dataset": "nope", "region": {"bbox": [0, 0, 1, 1]}})


class TestRegistry:
    def test_default_dataset_resolution(self, handle):
        service = GeoService()
        service.register("only", Dataset(handle))
        response = service.run({"region": {"bbox": [-74.2, 40.5, -73.7, 40.95]}})
        assert response.dataset == "only"

    def test_default_requires_single_dataset(self, handle):
        service = GeoService()
        service.register("a", Dataset(handle))
        service.register("b", Dataset(handle))
        with pytest.raises(ApiError) as excinfo:
            service.run({"region": {"bbox": [0, 0, 1, 1]}})
        assert excinfo.value.code == UNKNOWN_DATASET

    def test_register_bare_block_wraps(self, handle):
        service = GeoService()
        dataset = service.register("raw", handle)
        assert isinstance(dataset, Dataset)
        assert dataset.name == "raw"
        assert "raw" in service

    def test_describe_catalog(self, service, kind):
        catalog = service.describe()
        [entry] = catalog["datasets"]
        assert entry["name"] == "small"
        assert entry["kind"] == kind
        assert entry["columns"] == ["fare", "distance"]
        assert entry["tuples"] > 0


class TestPersistence:
    def test_save_open_round_trip(self, service, handle, small_polygons, tmp_path):
        dataset = service.dataset("small")
        path = tmp_path / "dataset.npz"
        dataset.save(path)
        reopened = Dataset.open(path, name="reopened")
        assert reopened.kind == dataset.kind
        for polygon in small_polygons[:4]:
            want = handle.select(polygon, AGGS)
            got = reopened.query(QueryRequest(region=polygon, aggregates=AGG_STRINGS))
            assert got.count == want.count
            assert_values_equal(got.values, want.values)
