"""Vectorised cell ops must agree with the scalar reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import cellid, cellops
from repro.cells.curves import MAX_LEVEL
from repro.errors import CellError


def _random_ids(rng: np.random.Generator, count: int) -> np.ndarray:
    levels = rng.integers(0, MAX_LEVEL + 1, count)
    out = np.empty(count, dtype=np.int64)
    for index in range(count):
        level = int(levels[index])
        pos = int(rng.integers(0, 4**level)) if level else 0
        out[index] = cellid.make_id(level, pos)
    return out


@pytest.fixture(scope="module")
def ids() -> np.ndarray:
    return _random_ids(np.random.default_rng(11), 500)


class TestAgainstScalar:
    def test_level_array(self, ids):
        expected = [cellid.level_of(int(raw)) for raw in ids]
        assert cellops.level_array(ids).tolist() == expected

    def test_range_arrays(self, ids):
        assert cellops.range_min_array(ids).tolist() == [
            cellid.range_min(int(raw)) for raw in ids
        ]
        assert cellops.range_max_array(ids).tolist() == [
            cellid.range_max(int(raw)) for raw in ids
        ]

    @pytest.mark.parametrize("level", [0, 5, 14, MAX_LEVEL])
    def test_first_last_child_arrays(self, level):
        rng = np.random.default_rng(4)
        coarse = np.array(
            [cellid.make_id(level_i, int(rng.integers(0, 4**level_i)))
             for level_i in rng.integers(0, level + 1, 100)],
            dtype=np.int64,
        )
        firsts = cellops.first_child_at_array(coarse, level)
        lasts = cellops.last_child_at_array(coarse, level)
        for raw, first, last in zip(coarse.tolist(), firsts.tolist(), lasts.tolist()):
            assert first == cellid.first_child_at(raw, level)
            assert last == cellid.last_child_at(raw, level)

    @pytest.mark.parametrize("level", [0, 3, 17, 29])
    def test_ancestors_at_level(self, level):
        rng = np.random.default_rng(21)
        leaves = cellops.leaf_ids_from_pos(rng.integers(0, 4**MAX_LEVEL, 200))
        ancestors = cellops.ancestors_at_level(leaves, level)
        for leaf, anc in zip(leaves.tolist(), ancestors.tolist()):
            assert anc == cellid.parent(leaf, level)

    def test_leaf_pos_roundtrip(self):
        pos = np.arange(1000, dtype=np.int64) * 7919
        leaves = cellops.leaf_ids_from_pos(pos)
        assert (cellops.pos_from_leaf_ids(leaves) == pos).all()
        assert (leaves % 2 == 1).all()


class TestGrouping:
    def test_sort_and_group_basics(self):
        keys = np.array([3, 3, 3, 7, 9, 9], dtype=np.int64)
        unique, starts, counts = cellops.sort_and_group(keys)
        assert unique.tolist() == [3, 7, 9]
        assert starts.tolist() == [0, 3, 4]
        assert counts.tolist() == [3, 1, 2]

    def test_sort_and_group_empty(self):
        unique, starts, counts = cellops.sort_and_group(np.empty(0, dtype=np.int64))
        assert unique.size == starts.size == counts.size == 0

    def test_sort_and_group_single_group(self):
        keys = np.full(17, 42, dtype=np.int64)
        unique, starts, counts = cellops.sort_and_group(keys)
        assert unique.tolist() == [42]
        assert counts.tolist() == [17]

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_counts_sum_to_input(self, values):
        keys = np.sort(np.asarray(values, dtype=np.int64))
        unique, starts, counts = cellops.sort_and_group(keys)
        assert counts.sum() == keys.size
        # offsets + counts reconstruct the boundaries
        rebuilt = []
        for u, s, c in zip(unique.tolist(), starts.tolist(), counts.tolist()):
            rebuilt.extend([u] * c)
            assert (keys[s : s + c] == u).all()
        assert rebuilt == keys.tolist()


class TestValidation:
    def test_level_bounds(self):
        ids = np.array([cellid.make_id(5, 1)], dtype=np.int64)
        with pytest.raises(CellError):
            cellops.ancestors_at_level(ids, 31)
        with pytest.raises(CellError):
            cellops.first_child_at_array(ids, -1)
