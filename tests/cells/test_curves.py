"""Tests for the Hilbert / Morton space-filling curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.curves import HILBERT, MAX_LEVEL, MORTON, curve_by_name
from repro.errors import CellError

CURVES = [HILBERT, MORTON]


@pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
class TestRoundTrips:
    def test_exhaustive_small_levels(self, curve):
        for level in (0, 1, 2, 3):
            seen = set()
            for pos in range(4**level):
                i, j = curve.decode(pos, level)
                assert curve.encode(i, j, level) == pos
                seen.add((i, j))
            assert len(seen) == 4**level

    def test_scalar_matches_array(self, curve):
        rng = np.random.default_rng(5)
        for level in (1, 7, 16, 30):
            side = 1 << level
            i = rng.integers(0, side, 50)
            j = rng.integers(0, side, 50)
            pos = curve.encode_array(i, j, level)
            for index in range(50):
                assert curve.encode(int(i[index]), int(j[index]), level) == int(pos[index])
            di, dj = curve.decode_array(pos, level)
            assert (di == i).all() and (dj == j).all()

    @given(
        st.integers(min_value=0, max_value=2**30 - 1),
        st.integers(min_value=0, max_value=2**30 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_level30(self, curve, i, j):
        pos = curve.encode(i, j, MAX_LEVEL)
        assert curve.decode(pos, MAX_LEVEL) == (i, j)
        assert 0 <= pos < 4**MAX_LEVEL


@pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
class TestHierarchy:
    @given(
        st.integers(min_value=0, max_value=2**30 - 1),
        st.integers(min_value=0, max_value=2**30 - 1),
        st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=150, deadline=None)
    def test_ancestor_position_is_prefix(self, curve, i, j, level):
        """The level-l position is the top 2l bits of the leaf position,
        the property that makes prefix containment possible."""
        leaf_pos = curve.encode(i, j, MAX_LEVEL)
        ancestor_pos = curve.encode(i >> (MAX_LEVEL - level), j >> (MAX_LEVEL - level), level)
        assert leaf_pos >> (2 * (MAX_LEVEL - level)) == ancestor_pos

    def test_children_are_contiguous(self, curve):
        for pos in range(16):
            i, j = curve.decode(pos, 2)
            child_positions = sorted(
                curve.encode((i << 1) | ci, (j << 1) | cj, 3)
                for ci in (0, 1)
                for cj in (0, 1)
            )
            assert child_positions == list(range(4 * pos, 4 * pos + 4))


class TestHilbertLocality:
    def test_adjacent_positions_are_adjacent_cells(self):
        """The Hilbert curve moves one grid step per position step."""
        level = 6
        previous = HILBERT.decode(0, level)
        for pos in range(1, 4**level):
            current = HILBERT.decode(pos, level)
            manhattan = abs(current[0] - previous[0]) + abs(current[1] - previous[1])
            assert manhattan == 1, f"jump at position {pos}"
            previous = current

    def test_morton_has_jumps(self):
        """Morton order jumps: locality is what distinguishes Hilbert."""
        level = 4
        jumps = 0
        previous = MORTON.decode(0, level)
        for pos in range(1, 4**level):
            current = MORTON.decode(pos, level)
            if abs(current[0] - previous[0]) + abs(current[1] - previous[1]) > 1:
                jumps += 1
            previous = current
        assert jumps > 0


class TestValidation:
    def test_rejects_bad_level(self):
        with pytest.raises(CellError):
            HILBERT.encode(0, 0, MAX_LEVEL + 1)
        with pytest.raises(CellError):
            HILBERT.decode(0, -1)

    def test_rejects_out_of_range_coordinates(self):
        with pytest.raises(CellError):
            HILBERT.encode(4, 0, 2)
        with pytest.raises(CellError):
            MORTON.encode(0, -1, 2)

    def test_rejects_out_of_range_position(self):
        with pytest.raises(CellError):
            HILBERT.decode(16, 2)

    def test_curve_by_name(self):
        assert curve_by_name("hilbert") is HILBERT
        assert curve_by_name("morton") is MORTON
        with pytest.raises(CellError):
            curve_by_name("peano")
