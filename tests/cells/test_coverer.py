"""Tests for the region coverer: soundness, error bounds, equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.coverer import CovererOptions, RegionCoverer, covering_error_bound_meters
from repro.cells.space import EARTH
from repro.cells.stats import level_stats
from repro.errors import CellError
from repro.geometry.polygon import MultiPolygon, Polygon


@pytest.fixture(scope="module")
def coverer() -> RegionCoverer:
    return RegionCoverer(EARTH)


@pytest.fixture(scope="module")
def quad() -> Polygon:
    return Polygon([(-74.02, 40.70), (-73.90, 40.71), (-73.88, 40.80), (-74.00, 40.82)])


@st.composite
def regular_polygons(draw):
    cx = draw(st.floats(min_value=-74.2, max_value=-73.7))
    cy = draw(st.floats(min_value=40.5, max_value=40.9))
    radius = draw(st.floats(min_value=0.003, max_value=0.08))
    sides = draw(st.integers(min_value=3, max_value=10))
    phase = draw(st.floats(min_value=0.0, max_value=3.0))
    return Polygon.regular(cx, cy, radius, sides, phase)


class TestSoundness:
    @given(regular_polygons(), st.integers(min_value=8, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_covering_contains_all_interior_points(self, polygon, level):
        """Every point inside the polygon falls in some covering cell."""
        coverer = RegionCoverer(EARTH)
        union = coverer.covering(polygon, level)
        rng = np.random.default_rng(42)
        box = polygon.bounding_box
        xs = rng.uniform(box.min_x, box.max_x, 400)
        ys = rng.uniform(box.min_y, box.max_y, 400)
        inside = polygon.contains_points(xs, ys)
        member = union.contains_leaves(EARTH.leaf_ids(xs, ys))
        assert bool((member | ~inside).all())

    @given(regular_polygons(), st.integers(min_value=8, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_interior_covering_within_polygon(self, polygon, level):
        """Interior covering cells contain only polygon points."""
        coverer = RegionCoverer(EARTH)
        union = coverer.interior_covering(polygon, level)
        rng = np.random.default_rng(43)
        box = polygon.bounding_box
        xs = rng.uniform(box.min_x, box.max_x, 400)
        ys = rng.uniform(box.min_y, box.max_y, 400)
        member = union.contains_leaves(EARTH.leaf_ids(xs, ys))
        inside = polygon.contains_points(xs, ys)
        assert bool((inside | ~member).all())

    def test_interior_subset_of_exterior(self, coverer, quad):
        exterior = coverer.covering(quad, 13)
        interior = coverer.interior_covering(quad, 13)
        leaves = interior.range_mins
        assert bool(exterior.contains_leaves(leaves).all())


class TestStructure:
    @given(regular_polygons())
    @settings(max_examples=30, deadline=None)
    def test_no_cells_finer_than_level(self, polygon):
        union = RegionCoverer(EARTH).covering(polygon, 12)
        assert union.max_level() <= 12

    def test_boundary_cells_at_exact_level(self, coverer, quad):
        union = coverer.covering(quad, 14)
        assert union.max_level() == 14

    def test_interior_cells_can_be_coarser(self, coverer, quad):
        union = coverer.covering(quad, 15)
        assert int(union.levels().min()) < 15

    def test_tiny_polygon_clamped_to_level(self, coverer):
        tiny = Polygon.regular(-73.9, 40.7, 1e-7, 4)
        union = coverer.covering(tiny, 10)
        assert len(union) >= 1
        assert bool((union.levels() <= 10).all())

    def test_invalid_level_rejected(self, coverer, quad):
        with pytest.raises(CellError):
            coverer.covering(quad, 31)


class TestScalarEquivalence:
    @given(regular_polygons(), st.integers(min_value=6, max_value=13))
    @settings(max_examples=30, deadline=None)
    def test_vectorised_matches_scalar(self, polygon, level):
        coverer = RegionCoverer(EARTH)
        assert coverer.covering(polygon, level) == coverer.covering_scalar(polygon, level)

    def test_interior_matches_scalar(self, coverer, quad):
        for level in (9, 12, 14):
            fast = coverer.interior_covering(quad, level)
            slow = coverer.covering_scalar(quad, level, interior=True)
            assert fast == slow


class TestMultiPolygon:
    def test_multipolygon_covering_covers_both_parts(self, coverer):
        left = Polygon.regular(-74.1, 40.6, 0.02, 5)
        right = Polygon.regular(-73.8, 40.85, 0.02, 6)
        union = coverer.covering(MultiPolygon([left, right]), 12)
        for part in (left, right):
            cx, cy = part.centroid()
            assert union.contains_leaf(EARTH.leaf_id(cx, cy))


class TestErrorBound:
    @given(regular_polygons())
    @settings(max_examples=20, deadline=None)
    def test_covering_points_within_error_bound(self, polygon):
        """Any covered point is within sqrt(e1^2+e2^2) of the polygon:
        verified via the degree-space analogue (cell diagonal)."""
        level = 12
        coverer = RegionCoverer(EARTH)
        union = coverer.covering(polygon, level)
        width, height = EARTH.cell_size(level)
        slack = float(np.hypot(width, height))
        for cell in list(union)[:50]:
            bounds = EARTH.cell_bounds(cell)
            cx, cy = bounds.center
            if polygon.contains_point(cx, cy):
                continue
            # Centre outside: it must still be within one cell diagonal
            # of the polygon (its cell touches the boundary).
            distance = _distance_to_polygon(cx, cy, polygon)
            assert distance <= slack * 1.01

    def test_error_bound_helper_matches_stats(self):
        bound = covering_error_bound_meters(EARTH, 14, latitude=40.0)
        assert bound == pytest.approx(level_stats(EARTH, 14, 40.0).diagonal_meters)


class TestBudget:
    def test_max_cells_limits_output(self, quad):
        unlimited = RegionCoverer(EARTH).covering(quad, 15)
        limited = RegionCoverer(EARTH, CovererOptions(max_cells=40)).covering(quad, 15)
        assert len(limited) <= max(40, 8)
        assert len(limited) < len(unlimited)

    def test_limited_covering_still_sound(self, quad):
        union = RegionCoverer(EARTH, CovererOptions(max_cells=30)).covering(quad, 15)
        rng = np.random.default_rng(9)
        box = quad.bounding_box
        xs = rng.uniform(box.min_x, box.max_x, 300)
        ys = rng.uniform(box.min_y, box.max_y, 300)
        inside = quad.contains_points(xs, ys)
        member = union.contains_leaves(EARTH.leaf_ids(xs, ys))
        assert bool((member | ~inside).all())


class TestCovererIsPure:
    def test_coverer_holds_no_state(self, quad):
        """The coverer's old per-instance memo was unbounded and
        identity-keyed; memoisation now lives in the bounded covering
        tier of :mod:`repro.cache`.  The coverer itself is a pure
        computation: repeat calls recompute and agree."""
        coverer = RegionCoverer(EARTH)
        first = coverer.covering(quad, 12)
        second = coverer.covering(quad, 12)
        assert second == first and second is not first
        assert not hasattr(coverer, "_cache")


def _distance_to_polygon(x: float, y: float, polygon: Polygon) -> float:
    best = np.inf
    for ax, ay, bx, by in polygon.edges():
        best = min(best, _point_segment_distance(x, y, ax, ay, bx, by))
    return best


def _point_segment_distance(px, py, ax, ay, bx, by):  # noqa: ANN001
    dx = bx - ax
    dy = by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        return float(np.hypot(px - ax, py - ay))
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    return float(np.hypot(px - (ax + t * dx), py - (ay + t * dy)))
