"""Space-filling-curve keying: round-trips, spans, locality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import EARTH, HILBERT, MAX_LEVEL, MORTON, CellSpace, cellid, cellops
from repro.cells import sfc
from repro.errors import CellError

MORTON_EARTH = CellSpace(EARTH.domain, curve=MORTON)


def random_cells(level: int, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    side = 1 << level
    i = rng.integers(0, side, count, dtype=np.int64)
    j = rng.integers(0, side, count, dtype=np.int64)
    return sfc.cells_from_grid(i, j, level, EARTH)


class TestGridRoundTrip:
    @pytest.mark.parametrize("level", [0, 1, 2, 5, 11, 18, 25, MAX_LEVEL])
    def test_encode_decode_round_trip(self, level):
        ids = random_cells(level, 500, seed=level + 1)
        i, j = sfc.grid_coords(ids, level, EARTH)
        back = sfc.cells_from_grid(i, j, level, EARTH)
        assert np.array_equal(back, ids)
        assert bool((cellops.level_array(back) == level).all())

    @pytest.mark.parametrize("space", [EARTH, MORTON_EARTH])
    def test_exhaustive_small_level(self, space):
        level = 4
        side = 1 << level
        i, j = np.meshgrid(
            np.arange(side, dtype=np.int64), np.arange(side, dtype=np.int64)
        )
        ids = sfc.cells_from_grid(i.ravel(), j.ravel(), level, space)
        assert np.unique(ids).size == side * side  # bijection over the grid
        ri, rj = sfc.grid_coords(ids, level, space)
        assert np.array_equal(ri, i.ravel())
        assert np.array_equal(rj, j.ravel())

    def test_level_mismatch_raises(self):
        ids = random_cells(10, 8, seed=3)
        with pytest.raises(CellError):
            sfc.grid_coords(ids, 11, EARTH)

    def test_level_out_of_range_raises(self):
        with pytest.raises(CellError):
            sfc.grid_coords(np.empty(0, dtype=np.int64), MAX_LEVEL + 1, EARTH)

    def test_empty_input(self):
        i, j = sfc.grid_coords(np.empty(0, dtype=np.int64), 7, EARTH)
        assert i.size == 0 and j.size == 0


class TestRekey:
    @pytest.mark.parametrize("level", [1, 6, 13, 20, MAX_LEVEL])
    def test_rekey_is_exact_inverse(self, level):
        ids = random_cells(level, 400, seed=level)
        there = sfc.rekey(ids, level, EARTH, MORTON_EARTH)
        back = sfc.rekey(there, level, MORTON_EARTH, EARTH)
        assert np.array_equal(back, ids)

    def test_rekey_same_curve_is_identity(self):
        ids = random_cells(9, 100, seed=42)
        assert np.array_equal(sfc.rekey(ids, 9, EARTH, EARTH), ids)

    def test_rekey_changes_keys_across_curves(self):
        ids = random_cells(9, 100, seed=43)
        assert not np.array_equal(sfc.rekey(ids, 9, EARTH, MORTON_EARTH), ids)


class TestKeySpans:
    def test_leaf_span_width_one(self):
        ids = random_cells(MAX_LEVEL, 64, seed=5)
        lo, hi = sfc.cell_key_spans(ids)
        assert np.array_equal(hi - lo, np.ones(64, dtype=np.int64))
        assert np.array_equal(lo, sfc.leaf_keys(ids))

    @pytest.mark.parametrize("level", [0, 3, 12, 29])
    def test_span_width_matches_level(self, level):
        ids = random_cells(level, 32, seed=level + 7)
        lo, hi = sfc.cell_key_spans(ids)
        assert bool((hi - lo == 4 ** (MAX_LEVEL - level)).all())
        assert bool((lo >= 0).all()) and bool((hi <= sfc.KEY_SPACE).all())

    def test_parent_span_contains_child_span(self):
        child = random_cells(15, 50, seed=8)
        parent = np.array(
            [cellid.parent(int(c), 9) for c in child], dtype=np.int64
        )
        clo, chi = sfc.cell_key_spans(child)
        plo, phi = sfc.cell_key_spans(parent)
        assert bool((plo <= clo).all()) and bool((chi <= phi).all())

    def test_root_cells_tile_key_space(self):
        ids = np.unique(
            sfc.cells_from_grid(
                np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]), 1, EARTH
            )
        )
        lo, hi = sfc.cell_key_spans(np.sort(ids))
        assert lo[0] == 0
        assert hi[-1] == sfc.KEY_SPACE
        assert np.array_equal(lo[1:], hi[:-1])


class TestLocality:
    @pytest.mark.parametrize("level", [1, 4, 8])
    def test_hilbert_walk_is_fully_adjacent(self, level):
        assert sfc.adjacency_fraction(HILBERT, level) == 1.0
        assert sfc.max_step(HILBERT, level) == 1

    @pytest.mark.parametrize("level", [2, 4, 8])
    def test_morton_walk_jumps(self, level):
        assert sfc.adjacency_fraction(MORTON, level) < 1.0
        assert sfc.max_step(MORTON, level) > 1

    def test_morton_max_step_grows_with_level(self):
        assert sfc.max_step(MORTON, 6) > sfc.max_step(MORTON, 3)

    def test_degenerate_level_zero(self):
        # One cell: no steps, vacuously perfect locality.
        assert sfc.step_lengths(HILBERT, 0).size == 0
        assert sfc.adjacency_fraction(MORTON, 0) == 1.0
        assert sfc.max_step(MORTON, 0) == 0

    def test_deep_exhaustive_walk_refused(self):
        with pytest.raises(CellError):
            sfc.step_lengths(HILBERT, 13)


class TestKeyDensity:
    def test_total_mass_preserved(self):
        keys = np.sort(random_cells(12, 200, seed=11))
        counts = np.arange(1, 201, dtype=np.int64)
        hist = sfc.key_density(keys, counts, bins=32)
        assert hist.size == 32
        assert hist.sum() == counts.sum()

    def test_empty_input(self):
        hist = sfc.key_density(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), bins=16
        )
        assert hist.sum() == 0

    def test_skew_shows_up(self):
        # All cells inside one root quadrant -> mass concentrated in a
        # narrow bin range.
        side = 1 << 10
        rng = np.random.default_rng(13)
        i = rng.integers(0, side // 8, 100, dtype=np.int64)
        j = rng.integers(0, side // 8, 100, dtype=np.int64)
        keys = np.unique(sfc.cells_from_grid(i, j, 10, EARTH))
        hist = sfc.key_density(keys, np.ones(keys.size, dtype=np.int64), bins=64)
        assert (hist > 0).sum() <= 8

    def test_bad_bins_raises(self):
        with pytest.raises(CellError):
            sfc.key_density(np.empty(0, dtype=np.int64), np.empty(0), bins=0)
