"""Tests for the CellSpace coordinate <-> id mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import cellid
from repro.cells.curves import MAX_LEVEL, MORTON
from repro.cells.space import EARTH, EARTH_BOUNDS, CellSpace
from repro.errors import CellError
from repro.geometry.bbox import BoundingBox

lon = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
lat = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)


class TestKeying:
    @given(lon, lat)
    @settings(max_examples=200, deadline=None)
    def test_leaf_contains_point(self, x, y):
        leaf = EARTH.leaf_id(x, y)
        bounds = EARTH.cell_bounds(leaf)
        # The owning cell's bounds contain the point (allowing for the
        # half-open split convention at the exact upper domain edge).
        assert bounds.expanded(1e-12).contains_point(min(x, bounds.max_x), min(y, bounds.max_y))

    @given(lon, lat, st.integers(min_value=0, max_value=MAX_LEVEL))
    @settings(max_examples=200, deadline=None)
    def test_cell_at_is_ancestor_of_leaf(self, x, y, level):
        leaf = EARTH.leaf_id(x, y)
        coarse = EARTH.cell_at(x, y, level)
        assert cellid.level_of(coarse) == level
        assert cellid.contains(coarse, leaf)

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(3)
        xs = rng.uniform(-180, 180, 300)
        ys = rng.uniform(-90, 90, 300)
        leaves = EARTH.leaf_ids(xs, ys)
        for index in range(0, 300, 17):
            assert int(leaves[index]) == EARTH.leaf_id(float(xs[index]), float(ys[index]))

    def test_out_of_domain_points_clamp(self):
        inside = EARTH.leaf_id(180.0, 90.0)
        outside = EARTH.leaf_id(200.0, 95.0)
        assert inside == outside


class TestCellGeometry:
    def test_cell_bounds_nest(self):
        cell = EARTH.cell_at(-73.98, 40.75, 10)
        child_bounds = [EARTH.cell_bounds(kid) for kid in cellid.children(cell)]
        parent_bounds = EARTH.cell_bounds(cell)
        for bounds in child_bounds:
            assert parent_bounds.contains_box(bounds)
        total_area = sum(bounds.area() for bounds in child_bounds)
        assert total_area == pytest.approx(parent_bounds.area())

    def test_cell_size_halves_per_level(self):
        for level in range(0, MAX_LEVEL):
            w0, h0 = EARTH.cell_size(level)
            w1, h1 = EARTH.cell_size(level + 1)
            assert w1 == pytest.approx(w0 / 2)
            assert h1 == pytest.approx(h0 / 2)

    def test_cell_center_inside_bounds(self):
        cell = EARTH.cell_at(10.0, 20.0, 8)
        cx, cy = EARTH.cell_center(cell)
        assert EARTH.cell_bounds(cell).contains_point(cx, cy)


class TestEnclosingCell:
    def test_small_box_gets_deep_cell(self):
        box = BoundingBox(-73.99, 40.74, -73.98, 40.75)
        cell = EARTH.smallest_enclosing_cell(box)
        assert cellid.level_of(cell) >= 8
        assert EARTH.cell_bounds(cell).contains_box(box)

    def test_whole_domain_gets_root(self):
        cell = EARTH.smallest_enclosing_cell(EARTH_BOUNDS)
        assert cellid.level_of(cell) == 0

    def test_box_outside_domain_raises(self):
        space = CellSpace(BoundingBox(0.0, 0.0, 10.0, 10.0))
        with pytest.raises(CellError):
            space.smallest_enclosing_cell(BoundingBox(20.0, 20.0, 30.0, 30.0))


class TestCustomSpaces:
    def test_custom_domain(self):
        space = CellSpace(BoundingBox(0.0, 0.0, 100.0, 50.0))
        leaf = space.leaf_id(50.0, 25.0)
        bounds = space.cell_bounds(leaf)
        assert bounds.contains_point(50.0, 25.0)

    def test_morton_space_differs_from_hilbert(self):
        morton_space = CellSpace(EARTH_BOUNDS, curve=MORTON)
        assert morton_space.leaf_id(-73.9, 40.7) != EARTH.leaf_id(-73.9, 40.7)

    def test_degenerate_domain_rejected(self):
        with pytest.raises(CellError):
            CellSpace(BoundingBox(0.0, 0.0, 0.0, 10.0))
