"""Tests for CellUnion containers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import cellid
from repro.cells.union import CellUnion, union_of_leaf_range
from repro.errors import CellError


def _union_of(*cells: int) -> CellUnion:
    return CellUnion(np.asarray(cells, dtype=np.int64))


class TestConstruction:
    def test_sorts_input(self):
        a = cellid.make_id(5, 10)
        b = cellid.make_id(5, 3)
        union = _union_of(a, b)
        assert union.ids.tolist() == sorted([a, b])

    def test_rejects_overlapping_cells(self):
        parent = cellid.make_id(4, 7)
        child = cellid.child(parent, 2)
        with pytest.raises(CellError):
            _union_of(parent, child)

    def test_empty_union(self):
        union = CellUnion(np.empty(0, dtype=np.int64))
        assert len(union) == 0
        assert not union
        assert not union.contains_leaf(cellid.make_id(30, 5))


class TestMembership:
    def test_contains_leaf(self):
        cell = cellid.make_id(10, 99)
        union = _union_of(cell)
        assert union.contains_leaf(cellid.range_min(cell))
        assert union.contains_leaf(cellid.range_max(cell))
        assert not union.contains_leaf(cellid.range_max(cell) + 2)

    def test_contains_leaves_vectorised(self):
        cells = [cellid.make_id(8, pos) for pos in (3, 9, 12)]
        union = _union_of(*cells)
        leaves = np.asarray(
            [cellid.range_min(cells[0]), cellid.range_max(cells[1]) + 2, cellid.range_max(cells[2])],
            dtype=np.int64,
        )
        assert union.contains_leaves(leaves).tolist() == [True, False, True]

    def test_num_leaves(self):
        cell = cellid.make_id(29, 7)  # one level above leaves: 4 leaves
        assert _union_of(cell).num_leaves() == 4


class TestPruning:
    def test_prune_outside(self):
        cells = [cellid.make_id(6, pos) for pos in (1, 5, 9)]
        union = _union_of(*cells)
        keep_range = (cellid.range_min(cells[1]), cellid.range_max(cells[1]))
        pruned = union.prune_outside(*keep_range)
        assert pruned.ids.tolist() == [cells[1]]

    def test_prune_keeps_partial_overlap(self):
        cell = cellid.make_id(6, 5)
        union = _union_of(cell)
        pruned = union.prune_outside(cellid.range_max(cell) - 10, cellid.range_max(cell) + 100)
        assert len(pruned) == 1


class TestTransforms:
    def test_to_level_expands(self):
        cell = cellid.make_id(4, 3)
        expanded = _union_of(cell).to_level(6)
        assert len(expanded) == 16
        assert (expanded.levels() == 6).all()
        assert expanded.ids.tolist() == sorted(cellid.children_at(cell, 6))

    def test_to_level_rejects_finer_input(self):
        cell = cellid.make_id(10, 3)
        with pytest.raises(CellError):
            _union_of(cell).to_level(9)

    def test_normalized_merges_complete_families(self):
        parent = cellid.make_id(7, 21)
        union = CellUnion(np.asarray(cellid.children(parent), dtype=np.int64))
        assert union.normalized().ids.tolist() == [parent]

    def test_normalized_keeps_partial_families(self):
        parent = cellid.make_id(7, 21)
        kids = cellid.children(parent)[:3]
        union = CellUnion(np.asarray(kids, dtype=np.int64))
        assert union.normalized() == union

    def test_normalized_cascades(self):
        grandparent = cellid.make_id(6, 2)
        leaves = []
        for kid in cellid.children(grandparent):
            leaves.extend(cellid.children(kid))
        union = CellUnion(np.asarray(leaves, dtype=np.int64))
        assert union.normalized().ids.tolist() == [grandparent]


class TestLeafRangeUnion:
    @given(
        st.integers(min_value=0, max_value=4**10 - 1),
        st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=100, deadline=None)
    def test_covers_exactly_the_range(self, start_pos, extent):
        # Work at a coarse leaf granularity to keep ranges small.
        first = cellid.make_id(30, start_pos)
        last = cellid.make_id(30, min(start_pos + extent, 4**30 - 1))
        union = union_of_leaf_range(first, last)
        assert union.num_leaves() == (last - first) // 2 + 1
        assert union.contains_leaf(first)
        assert union.contains_leaf(last)
        if first > cellid.MIN_ID:
            assert not union.contains_leaf(first - 2)
        assert not union.contains_leaf(last + 2)

    def test_empty_range(self):
        a = cellid.make_id(30, 10)
        b = cellid.make_id(30, 5)
        assert len(union_of_leaf_range(a, b)) == 0

    def test_aligned_range_collapses_to_one_cell(self):
        cell = cellid.make_id(12, 345)
        union = union_of_leaf_range(cellid.range_min(cell), cellid.range_max(cell))
        assert union.ids.tolist() == [cell]


class TestEquality:
    def test_eq_and_hash(self):
        a = _union_of(cellid.make_id(5, 1), cellid.make_id(5, 9))
        b = _union_of(cellid.make_id(5, 9), cellid.make_id(5, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != _union_of(cellid.make_id(5, 1))
