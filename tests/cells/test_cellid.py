"""Tests for the 64-bit S2-style cell-id arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import cellid
from repro.cells.cellid import CellId
from repro.cells.curves import MAX_LEVEL
from repro.errors import CellError

valid_levels = st.integers(min_value=0, max_value=MAX_LEVEL)


@st.composite
def cells(draw, min_level: int = 0, max_level: int = MAX_LEVEL):
    level = draw(st.integers(min_value=min_level, max_value=max_level))
    pos = draw(st.integers(min_value=0, max_value=4**level - 1))
    return cellid.make_id(level, pos)


class TestEncoding:
    @given(cells())
    @settings(max_examples=300, deadline=None)
    def test_level_pos_roundtrip(self, raw):
        level = cellid.level_of(raw)
        pos = cellid.pos_of(raw)
        assert cellid.make_id(level, pos) == raw

    def test_root_cell(self):
        root = cellid.make_id(0, 0)
        assert cellid.level_of(root) == 0
        assert cellid.range_min(root) == cellid.MIN_ID
        assert cellid.range_max(root) == cellid.MAX_ID

    def test_leaf_ids_are_odd(self):
        for pos in (0, 1, 12345, 4**MAX_LEVEL - 1):
            raw = cellid.make_id(MAX_LEVEL, pos)
            assert raw % 2 == 1
            assert cellid.is_leaf(raw)

    def test_is_valid_rejects_garbage(self):
        assert not cellid.is_valid(0)
        assert not cellid.is_valid(-4)
        assert not cellid.is_valid(cellid.MAX_ID + 1)
        # Sentinel on an odd bit offset -> invalid.
        assert not cellid.is_valid(0b10)
        assert cellid.is_valid(0b100)

    def test_make_id_validation(self):
        with pytest.raises(CellError):
            cellid.make_id(31, 0)
        with pytest.raises(CellError):
            cellid.make_id(2, 16)


class TestHierarchy:
    @given(cells(max_level=MAX_LEVEL - 1))
    @settings(max_examples=200, deadline=None)
    def test_children_partition_parent_range(self, raw):
        kids = cellid.children(raw)
        assert len(kids) == 4
        assert cellid.range_min(kids[0]) == cellid.range_min(raw)
        assert cellid.range_max(kids[3]) == cellid.range_max(raw)
        for left, right in zip(kids, kids[1:]):
            assert cellid.range_max(left) + 2 == cellid.range_min(right)

    @given(cells(min_level=1))
    @settings(max_examples=200, deadline=None)
    def test_parent_contains_cell(self, raw):
        parent = cellid.parent(raw)
        assert cellid.level_of(parent) == cellid.level_of(raw) - 1
        assert cellid.contains(parent, raw)
        assert not cellid.contains(raw, parent)

    @given(cells(max_level=MAX_LEVEL - 1))
    @settings(max_examples=200, deadline=None)
    def test_parent_of_child_is_identity(self, raw):
        for index, kid in enumerate(cellid.children(raw)):
            assert cellid.parent(kid) == raw
            assert cellid.child(raw, index) == kid

    @given(cells(), valid_levels)
    @settings(max_examples=200, deadline=None)
    def test_ancestor_at_level(self, raw, level):
        own = cellid.level_of(raw)
        if level > own:
            with pytest.raises(CellError):
                cellid.parent(raw, level)
            return
        ancestor = cellid.parent(raw, level)
        assert cellid.level_of(ancestor) == level
        assert cellid.contains(ancestor, raw)

    def test_first_last_child_at(self):
        cell = cellid.make_id(10, 999)
        first = cellid.first_child_at(cell, 14)
        last = cellid.last_child_at(cell, 14)
        assert cellid.level_of(first) == 14
        assert cellid.level_of(last) == 14
        assert cellid.range_min(first) == cellid.range_min(cell)
        assert cellid.range_max(last) == cellid.range_max(cell)

    def test_children_at_enumerates_in_order(self):
        cell = cellid.make_id(5, 123)
        grandchildren = list(cellid.children_at(cell, 7))
        assert len(grandchildren) == 16
        assert grandchildren == sorted(grandchildren)
        for gc in grandchildren:
            assert cellid.contains(cell, gc)

    def test_next_sibling(self):
        cell = cellid.make_id(4, 7)
        assert cellid.next_sibling_id(cell) == cellid.make_id(4, 8)


class TestContainment:
    @given(cells(), cells())
    @settings(max_examples=300, deadline=None)
    def test_containment_matches_range_inclusion(self, a, b):
        expected = cellid.range_min(a) <= cellid.range_min(b) and cellid.range_max(
            b
        ) <= cellid.range_max(a)
        assert cellid.contains(a, b) == expected

    @given(cells())
    @settings(max_examples=200, deadline=None)
    def test_cell_id_within_own_range(self, raw):
        assert cellid.range_min(raw) <= raw <= cellid.range_max(raw)

    def test_sibling_disjointness(self):
        parent = cellid.make_id(8, 77)
        kids = cellid.children(parent)
        for a in kids:
            for b in kids:
                if a != b:
                    assert not cellid.contains(a, b)


class TestCellIdWrapper:
    def test_wrapper_api(self):
        cell = CellId.from_level_pos(9, 1000)
        assert cell.level == 9
        assert cell.pos == 1000
        assert not cell.is_leaf
        assert cell.parent().level == 8
        assert cell.children()[2].parent() == cell
        assert cell.contains(cell.children()[0])

    def test_wrapper_ordering_matches_raw(self):
        a = CellId.from_level_pos(5, 10)
        b = CellId.from_level_pos(5, 11)
        assert (a < b) == (a.id < b.id)

    def test_wrapper_rejects_invalid(self):
        with pytest.raises(CellError):
            CellId(0)

    def test_child_index_validation(self):
        with pytest.raises(CellError):
            cellid.child(cellid.make_id(3, 0), 4)
        with pytest.raises(CellError):
            cellid.child(cellid.make_id(MAX_LEVEL, 1), 0)
