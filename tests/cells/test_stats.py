"""Tests for the per-level cell statistics table."""

from __future__ import annotations

import pytest

from repro.cells.space import EARTH
from repro.cells.stats import level_for_max_diagonal, level_stats, stats_table
from repro.errors import CellError


class TestLevelStats:
    def test_diagonal_halves_per_level(self):
        for level in range(0, 29):
            this = level_stats(EARTH, level)
            deeper = level_stats(EARTH, level + 1)
            assert deeper.diagonal_meters == pytest.approx(this.diagonal_meters / 2.0)

    def test_metres_shrink_with_latitude(self):
        at_equator = level_stats(EARTH, 15, latitude=0.0)
        at_nyc = level_stats(EARTH, 15, latitude=40.7)
        assert at_nyc.width_meters < at_equator.width_meters
        assert at_nyc.height_meters == pytest.approx(at_equator.height_meters)

    def test_table_has_all_levels(self):
        table = stats_table(EARTH)
        assert len(table) == 31
        assert [entry.level for entry in table] == list(range(31))

    def test_diagonal_consistent_with_sides(self):
        entry = level_stats(EARTH, 17, latitude=40.7)
        expected = (entry.width_meters**2 + entry.height_meters**2) ** 0.5
        assert entry.diagonal_meters == pytest.approx(expected)


class TestErrorBoundLookup:
    def test_level_for_diagonal_is_coarsest_satisfying(self):
        for target in (1e7, 1e5, 1e3, 10.0):
            level = level_for_max_diagonal(EARTH, target)
            assert level_stats(EARTH, level).diagonal_meters <= target
            if level > 0:
                assert level_stats(EARTH, level - 1).diagonal_meters > target

    def test_tiny_bound_rejected(self):
        with pytest.raises(CellError):
            level_for_max_diagonal(EARTH, 1e-6)

    def test_non_positive_bound_rejected(self):
        with pytest.raises(CellError):
            level_for_max_diagonal(EARTH, 0.0)

    def test_paper_style_bounds(self):
        """A ~100m bound lands in the paper's level-17..19 territory for
        our planar cells (exact levels differ from S2's sphere)."""
        level = level_for_max_diagonal(EARTH, 100.0, latitude=40.7)
        assert 15 <= level <= 22
