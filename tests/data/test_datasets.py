"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    AMERICAS_BOUNDS,
    NYC_BOUNDS,
    US_BOUNDS,
    Hotspot,
    mixture_points,
    nyc_cleaning_rules,
    nyc_taxi,
    osm_americas,
    us_tweets,
)
from repro.data.nyc import DIRTY_FRACTION
from repro.errors import GeometryError
from repro.storage import col, extract
from repro.cells import EARTH


class TestMixture:
    def test_counts_and_bounds(self):
        rng = np.random.default_rng(1)
        spots = [Hotspot(0.0, 0.0, 1.0, 1.0), Hotspot(5.0, 5.0, 0.5, 0.5, weight=2.0)]
        from repro.geometry import BoundingBox

        bounds = BoundingBox(-10, -10, 10, 10)
        xs, ys = mixture_points(spots, 5000, bounds, rng)
        assert xs.shape == ys.shape == (5000,)
        assert bool(bounds.contains_points(xs, ys).all())

    def test_weights_drive_density(self):
        rng = np.random.default_rng(2)
        spots = [Hotspot(-5.0, 0.0, 0.5, 0.5, weight=9.0), Hotspot(5.0, 0.0, 0.5, 0.5, weight=1.0)]
        from repro.geometry import BoundingBox

        bounds = BoundingBox(-10, -10, 10, 10)
        xs, _ = mixture_points(spots, 10_000, bounds, rng, uniform_fraction=0.0)
        left = int((xs < 0).sum())
        assert left > 8000

    def test_validation(self):
        rng = np.random.default_rng(3)
        from repro.geometry import BoundingBox

        bounds = BoundingBox(-1, -1, 1, 1)
        with pytest.raises(GeometryError):
            mixture_points([], 10, bounds, rng)
        with pytest.raises(GeometryError):
            Hotspot(0, 0, -1.0, 1.0)
        with pytest.raises(GeometryError):
            mixture_points([Hotspot(0, 0, 1, 1)], 10, bounds, rng, uniform_fraction=2.0)


class TestNycTaxi:
    @pytest.fixture(scope="class")
    def table(self):
        return nyc_taxi(30_000, seed=42)

    def test_schema_and_size(self, table):
        assert len(table) == 30_000
        assert "fare_amount" in table.schema
        assert "pickup_ts" in table.schema
        assert len(table.schema) == 7

    def test_filter_selectivities_match_paper(self, table):
        base = extract(table, EARTH, nyc_cleaning_rules())
        assert (col("trip_distance") >= 4).selectivity(base.table) == pytest.approx(0.16, abs=0.04)
        assert (col("passenger_cnt") == 1).selectivity(base.table) == pytest.approx(0.70, abs=0.03)
        assert (col("passenger_cnt") > 1).selectivity(base.table) == pytest.approx(0.30, abs=0.03)

    def test_cleaning_drops_dirty_rows(self, table):
        base = extract(table, EARTH, nyc_cleaning_rules())
        dropped = len(table) - len(base)
        assert dropped > 0
        assert dropped < 3 * DIRTY_FRACTION * len(table)
        assert bool(NYC_BOUNDS.contains_points(base.table.xs, base.table.ys).all())
        assert bool((base.table.column("fare_amount") <= 500).all())

    def test_clean_generation(self):
        table = nyc_taxi(1000, seed=1, dirty=False)
        base = extract(table, EARTH, nyc_cleaning_rules())
        assert len(base) == 1000

    def test_deterministic_per_seed(self):
        a = nyc_taxi(500, seed=7)
        b = nyc_taxi(500, seed=7)
        c = nyc_taxi(500, seed=8)
        assert np.array_equal(a.xs, b.xs)
        assert not np.array_equal(a.xs, c.xs)

    def test_fare_correlates_with_distance(self, table):
        fare = table.column("fare_amount")
        distance = table.column("trip_distance")
        finite = (fare < 1000) & (distance < 100)
        correlation = np.corrcoef(fare[finite], distance[finite])[0, 1]
        assert correlation > 0.8


class TestOtherDatasets:
    def test_tweets_bounds_and_schema(self):
        table = us_tweets(5000, seed=3)
        assert bool(US_BOUNDS.contains_points(table.xs, table.ys).all())
        assert table.schema.names == ["val_a", "val_b", "val_c", "val_d"]

    def test_osm_bounds(self):
        table = osm_americas(5000, seed=3)
        assert bool(AMERICAS_BOUNDS.contains_points(table.xs, table.ys).all())

    def test_tweets_metro_skew(self):
        table = us_tweets(20_000, seed=4)
        # NYC metro box should hold far more than uniform density.
        from repro.geometry import BoundingBox

        nyc = BoundingBox(-74.5, 40.2, -73.5, 41.2)
        fraction = float(nyc.contains_points(table.xs, table.ys).mean())
        uniform_share = nyc.area() / US_BOUNDS.area()
        assert fraction > 10 * uniform_share
