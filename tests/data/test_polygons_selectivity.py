"""Tests for polygon tessellations and selectivity-targeted polygons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    NYC_BOUNDS,
    US_BOUNDS,
    americas_countries,
    bounded_voronoi,
    nyc_neighborhoods,
    random_rectangles,
    selectivity_polygon,
    selectivity_sweep,
    us_states,
)
from repro.errors import GeometryError


class TestBoundedVoronoi:
    def test_cells_partition_the_box(self):
        rng = np.random.default_rng(1)
        xs = rng.uniform(0.1, 9.9, 40)
        ys = rng.uniform(0.1, 4.9, 40)
        from repro.geometry import BoundingBox

        bounds = BoundingBox(0, 0, 10, 5)
        cells = bounded_voronoi(xs, ys, bounds)
        assert len(cells) == 40
        total_area = sum(cell.area() for cell in cells)
        assert total_area == pytest.approx(bounds.area(), rel=1e-6)

    def test_each_seed_in_own_cell(self):
        rng = np.random.default_rng(2)
        xs = rng.uniform(1, 9, 25)
        ys = rng.uniform(1, 4, 25)
        from repro.geometry import BoundingBox

        cells = bounded_voronoi(xs, ys, BoundingBox(0, 0, 10, 5))
        for index, cell in enumerate(cells):
            assert cell.contains_point(float(xs[index]), float(ys[index]))

    def test_needs_three_seeds(self):
        from repro.geometry import BoundingBox

        with pytest.raises(GeometryError):
            bounded_voronoi(np.array([1.0]), np.array([1.0]), BoundingBox(0, 0, 2, 2))


class TestTessellations:
    def test_nyc_neighborhoods(self):
        polygons = nyc_neighborhoods(seed=1)
        assert 150 <= len(polygons) <= 195
        total = sum(p.area() for p in polygons)
        assert total == pytest.approx(NYC_BOUNDS.area(), rel=1e-6)
        # Simple shapes, as the paper notes.
        median_vertices = float(np.median([p.num_vertices for p in polygons]))
        assert median_vertices <= 8

    def test_density_tracking(self):
        """Manhattan-side polygons are smaller than suburb polygons."""
        polygons = nyc_neighborhoods(seed=1)
        manhattan = [p for p in polygons if p.centroid()[0] < -73.94 and 40.70 < p.centroid()[1] < 40.82]
        suburbs = [p for p in polygons if p.centroid()[0] > -73.80]
        assert manhattan and suburbs
        assert np.median([p.area() for p in manhattan]) < np.median([p.area() for p in suburbs])

    def test_us_states_and_countries(self):
        states = us_states(seed=2)
        countries = americas_countries(seed=2)
        assert 40 <= len(states) <= 49
        assert 25 <= len(countries) <= 35

    def test_deterministic(self):
        a = nyc_neighborhoods(seed=5)
        b = nyc_neighborhoods(seed=5)
        assert len(a) == len(b)
        assert np.allclose(a[0].xs, b[0].xs)


class TestRectangles:
    def test_count_and_bounds(self):
        rects = random_rectangles(US_BOUNDS, count=51, seed=3)
        assert len(rects) == 51
        for rect in rects:
            assert rect.num_vertices == 4
            assert US_BOUNDS.contains_box(rect.bounding_box)


class TestSelectivityPolygons:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(11)
        return rng.normal(0, 1, 30_000), rng.normal(5, 2, 30_000)

    @pytest.mark.parametrize("fraction", [0.01, 0.1, 0.5, 0.9])
    def test_fraction_is_accurate(self, cloud, fraction):
        xs, ys = cloud
        polygon = selectivity_polygon(xs, ys, fraction)
        actual = polygon.contains_points(xs, ys).mean()
        assert actual == pytest.approx(fraction, abs=0.02)

    def test_full_selectivity_covers_everything(self, cloud):
        xs, ys = cloud
        polygon = selectivity_polygon(xs, ys, 1.0)
        assert polygon.contains_points(xs, ys).all()

    def test_sweep_is_nested(self, cloud):
        xs, ys = cloud
        polygons = selectivity_sweep(xs, ys, [0.1, 0.5, 1.0])
        areas = [p.area() for p in polygons]
        assert areas == sorted(areas)

    def test_validation(self, cloud):
        xs, ys = cloud
        with pytest.raises(GeometryError):
            selectivity_polygon(xs, ys, 0.0)
        with pytest.raises(GeometryError):
            selectivity_polygon(np.empty(0), np.empty(0), 0.5)
