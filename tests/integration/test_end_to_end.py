"""End-to-end integration tests over the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ARTree, BinarySearchIndex, BTreeIndex, PHTree
from repro.cells import EARTH
from repro.core import AdaptiveGeoBlock, AggSpec, CachePolicy, GeoBlock
from repro.data import nyc_cleaning_rules, nyc_neighborhoods, nyc_taxi
from repro.storage import col, extract
from repro.workloads import base_workload, default_aggregates, skewed_workload

LEVEL = 14


@pytest.fixture(scope="module")
def pipeline():
    raw = nyc_taxi(25_000, seed=77)
    base = extract(raw, EARTH, nyc_cleaning_rules())
    block = GeoBlock.build(base, LEVEL)
    return raw, base, block


class TestFullPipeline:
    def test_extract_clean_and_sorted(self, pipeline):
        raw, base, _ = pipeline
        assert 0 < len(base) <= len(raw)
        assert bool((base.keys[1:] >= base.keys[:-1]).all())

    def test_all_competitors_agree_on_coverings(self, pipeline):
        _, base, block = pipeline
        polygons = nyc_neighborhoods(seed=77)[:25]
        aggs = default_aggregates(base.table.schema, 4)
        binary = BinarySearchIndex(base, LEVEL)
        btree = BTreeIndex(base, LEVEL)
        for polygon in polygons:
            expected = block.select(polygon, aggs)
            for competitor in (binary, btree):
                got = competitor.select(polygon, aggs)
                assert got.count == expected.count
                for key, value in expected.values.items():
                    if not np.isnan(value):
                        assert got.values[key] == pytest.approx(value), key

    def test_rect_approximators_bracket_exact_count(self, pipeline):
        """PHTree under-counts (interior rectangle), Block over-counts
        (covering): the truth lies in between."""
        _, base, block = pipeline
        phtree = PHTree(base)
        polygons = nyc_neighborhoods(seed=77)[:10]
        for polygon in polygons:
            exact = polygon.count_contained(base.table.xs, base.table.ys)
            assert phtree.count(polygon) <= exact <= block.count(polygon)

    def test_artree_on_subset(self, pipeline):
        _, base, _ = pipeline
        subset = base.subset(5000)
        artree = ARTree(subset)
        box = subset.table.bounding_box().expanded(0.01)
        assert artree.count(box) == len(subset)

    def test_filtered_blocks_partition_totals(self, pipeline):
        _, base, _ = pipeline
        solo = GeoBlock.build(base, LEVEL, col("passenger_cnt") == 1)
        shared = GeoBlock.build(base, LEVEL, col("passenger_cnt") > 1)
        assert solo.header.total_count + shared.header.total_count == len(base)

    def test_workload_replay_with_adaptive_cache(self, pipeline):
        _, base, block = pipeline
        polygons = nyc_neighborhoods(seed=77)
        aggs = default_aggregates(base.table.schema, 7)
        base_wl = base_workload(polygons, aggs)
        skew_wl = skewed_workload(polygons, aggs, seed=77)
        adaptive = AdaptiveGeoBlock(GeoBlock.build(base, LEVEL), CachePolicy(threshold=1.0))
        # Base pass, adapt, then skewed passes must agree with Block.
        for query in base_wl:
            adaptive.select(query.region, list(query.aggs))
        adaptive.adapt()
        adaptive.reset_cache_counters()
        for query in skew_wl:
            expected = block.select(query.region, list(query.aggs))
            got = adaptive.select(query.region, list(query.aggs))
            assert got.count == expected.count
        assert adaptive.cache_hit_rate > 0.5

    def test_coarsening_chain(self, pipeline):
        _, base, block = pipeline
        chain = block
        polygon = nyc_neighborhoods(seed=77)[0]
        previous_count = chain.count(polygon)
        for level in (12, 10, 8):
            chain = chain.coarsened(level)
            current = chain.count(polygon)
            assert current >= previous_count  # coarser -> more false positives
            previous_count = current

    def test_count_query_specialisation(self, pipeline):
        _, base, block = pipeline
        for polygon in nyc_neighborhoods(seed=77)[:15]:
            assert block.count(polygon) == block.select(polygon).count


class TestScalabilityShape:
    def test_block_query_cost_grows_sublinearly(self):
        """The headline scaling property: GeoBlock query latency is
        driven by the number of aggregates, not the number of points."""
        polygons = nyc_neighborhoods(seed=3)[:20]
        aggs = [AggSpec("sum", "fare_amount")]
        cells_small, cells_large = [], []
        for count, sink in ((5_000, cells_small), (40_000, cells_large)):
            base = extract(nyc_taxi(count, seed=3), EARTH, nyc_cleaning_rules())
            block = GeoBlock.build(base, 12)
            for polygon in polygons:
                result = block.select(polygon, aggs)
                sink.append(result.cells_probed)
        # 8x the points -> far less than 8x the probed cells.
        assert sum(cells_large) < 3 * sum(cells_small)
