"""Smoke tests for the experiment harness: every experiment runs on a
tiny configuration and reproduces its paper's qualitative shape."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, clear_cache
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.errors import ReproError

TINY = ExperimentConfig(nyc_points=12_000, tweets_points=8_000, osm_points=10_000)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistry:
    def test_all_paper_artefacts_present(self):
        expected = {
            "fig10", "fig11a", "fig11b", "fig11c", "table2", "fig12",
            "fig13a", "fig13b", "fig14", "fig15", "fig16", "fig17",
            "fig18", "fig19",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("fig99")


@pytest.mark.slow
class TestExperimentShapes:
    def test_fig10_block_wins(self):
        result = run_experiment("fig10", TINY)
        runtimes: dict[tuple[int, str], float] = {}
        for row in result.rows:
            runtimes[(row[0], row[1])] = float(row[3])
        for aggs in (2, 4, 8):
            assert runtimes[(aggs, "Block")] < runtimes[(aggs, "BinarySearch")]
            assert runtimes[(aggs, "Block")] < runtimes[(aggs, "BTree")]

    def test_fig11a_sorting_dominates_block_build(self):
        result = run_experiment("fig11a", TINY)
        rows = {row[0]: row for row in result.rows}
        assert rows["Block"][1] > rows["Block"][2]  # sorting > building

    def test_fig11b_all_positive(self):
        result = run_experiment("fig11b", TINY)
        for row in result.rows:
            assert float(row[1]) > 0

    def test_fig11c_overhead_grows_with_level(self):
        result = run_experiment("fig11c", TINY)
        overheads = [float(row[3]) for row in result.rows]
        assert overheads[-1] > overheads[0]

    def test_table2_has_nine_levels(self):
        result = run_experiment("table2", TINY)
        assert len(result.rows) == 9

    def test_fig12_block_flattest(self):
        result = run_experiment("fig12", TINY)
        by_algo: dict[str, list[float]] = {}
        for row in result.rows:
            by_algo.setdefault(row[1], []).append(float(row[2]))
        # Block's runtime at the highest selectivity stays well below
        # the on-the-fly baselines'.
        assert by_algo["Block"][-1] < by_algo["BinarySearch"][-1]
        assert by_algo["Block"][-1] < by_algo["BTree"][-1]

    def test_fig13_runtime_scaling(self):
        overhead, runtime = _run_fig13()
        growth: dict[str, float] = {}
        for row in runtime.rows:
            growth[row[1]] = float(row[3])  # last write survives = largest size
        assert growth["Block"] < growth["BinarySearch"]

    def test_fig14_covering_errors_cancel(self):
        result = run_experiment("fig14", TINY)
        for row in result.rows:
            if row[1] in ("BinarySearch", "Block", "BTree"):
                assert float(row[3]) < 5.0  # near-zero union error

    def test_fig15_block_faster_than_binarysearch(self):
        result = run_experiment("fig15", TINY)
        by_key = {(row[0], row[1]): float(row[2]) for row in result.rows}
        for workload in ("States", "Rectangles"):
            # At the tiny CI scale cells ~ points, so Block's margin over
            # the scan degenerates to noise; repeated measurements put
            # the ratio anywhere in ~0.6-2.6 on a loaded machine, so the
            # cushion only guards against a catastrophic (order-of-
            # magnitude) regression.
            assert by_key[(workload, "Block")] <= 3.0 * by_key[(workload, "BinarySearch")]

    def test_fig16_error_monotone_decreasing(self):
        result = run_experiment("fig16", TINY)
        errors = [float(row[3]) for row in result.rows]
        assert errors[0] > errors[-1]
        assert all(a >= b * 0.9 for a, b in zip(errors, errors[1:]))

    def test_fig17_cache_pays_off_with_skew(self):
        result = run_experiment("fig17", TINY)
        totals = {(row[0], row[1]): float(row[4]) for row in result.rows}
        # At the tiny CI scale the per-cell cache benefit is close to the
        # probing overhead, so timing noise dominates the exact ratio;
        # assert only that BlockQC stays in Block's ballpark at the
        # highest skew (the quantitative crossover is validated by the
        # benchmark reports at larger scale, see EXPERIMENTS.md).
        assert totals[(16, "BlockQC")] < totals[(16, "Block")] * 3.0

    def test_fig18_hit_rate_grows_with_threshold(self):
        result = run_experiment("fig18", TINY)
        qc_rows = [row for row in result.rows if row[0] == "BlockQC"]
        skew_rates = [float(row[5]) for row in qc_rows]
        assert skew_rates[-1] == pytest.approx(100.0)
        assert skew_rates[0] <= skew_rates[-1]

    def test_fig19_selective_filters_amortise_slower(self):
        result = run_experiment("fig19", TINY)
        payoff_by_predicate: dict[str, list[float]] = {}
        for row in result.rows:
            if row[6] != "never":
                payoff_by_predicate.setdefault(row[0], []).append(float(row[6]))
        selective = payoff_by_predicate.get("distance >= 4", [])
        broad = payoff_by_predicate.get("passenger_cnt == 1", [])
        if selective and broad:
            assert min(selective) >= max(broad) * 0.5


def _run_fig13():
    from repro.experiments import fig13_scalability

    return fig13_scalability.run(TINY)
