"""Helpers for the static-analysis tests: build SourceFile objects
from inline snippets and locate the live repository root."""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.analysis.core import SourceFile

#: The repository root the live-tree checks run against (tests execute
#: from anywhere; the package layout pins the root).
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def repo_root() -> pathlib.Path:
    assert (REPO_ROOT / "src" / "repro").is_dir()
    return REPO_ROOT


def source(text: str, relative: str = "src/repro/engine/sample.py") -> SourceFile:
    """An in-memory SourceFile for checker fixtures."""
    body = textwrap.dedent(text)
    return SourceFile(
        path=pathlib.Path("/" + relative),
        relative=relative,
        text=body,
        lines=body.splitlines(),
    )
