"""FD family: known-good and known-bad fold shapes, pragma handling."""

from __future__ import annotations

from repro.analysis import floats

from tests.analysis.conftest import source


def rules(findings):
    return [finding.rule for finding in findings]


# -- FD001: builtin sum in a fold path ----------------------------------------


def test_float_sum_is_flagged():
    src = source(
        """
        def fold(parts):
            return sum(parts)
        """
    )
    findings = floats.check_source(src)
    assert rules(findings) == ["FD001"]
    assert findings[0].line == 3


def test_integer_sums_pass():
    src = source(
        """
        def fold(results, plans, views):
            a = sum(result.count for result in results)
            b = sum(plan.num_cells for plan in plans)
            c = sum(int(plan.from_cache) for plan in plans)
            d = sum(1 for view in views if view.pinned)
            e = sum(view.nbytes() for view in views)
            f = sum(len(view.rows) for view in views)
            counts = [1, 2, 3]
            return a + b + c + d + e + f + sum(counts)
        """
    )
    assert floats.check_source(src) == []


def test_conditional_element_needs_both_branches_integral():
    good = source("total = sum(x.count if x.ok else 0 for x in xs)\n")
    bad = source("total = sum(x.count if x.ok else x.value for x in xs)\n")
    assert floats.check_source(good) == []
    assert rules(floats.check_source(bad)) == ["FD001"]


def test_pragma_suppresses_with_reason():
    src = source(
        """
        def fold(parts):
            # repro-lint: allow[FD001] parts are ints, proven by the schema
            return sum(parts)
        """
    )
    assert floats.check_source(src) == []


def test_pragma_on_same_line_suppresses():
    src = source(
        "total = sum(parts)  # repro-lint: allow[FD001] int partials\n"
    )
    assert floats.check_source(src) == []


def test_pragma_for_other_rule_does_not_suppress():
    src = source(
        """
        # repro-lint: allow[FD002] wrong rule
        total = sum(parts)
        """
    )
    assert rules(floats.check_source(src)) == ["FD001"]


# -- FD002: fsum outside the allowlist ----------------------------------------


def test_fsum_outside_allowlist_is_flagged():
    src = source(
        """
        import math

        def refold(parts):
            return math.fsum(parts)
        """
    )
    findings = floats.check_source(src)
    assert rules(findings) == ["FD002"]
    assert "refold" in findings[0].message


def test_fsum_in_allowlisted_site_passes():
    src = source(
        """
        import math

        def merge_results(parts):
            return math.fsum(parts)
        """,
        relative="src/repro/engine/executor.py",
    )
    assert floats.check_source(src) == []


def test_fsum_allowlist_is_per_function():
    src = source(
        """
        import math

        def other(parts):
            return math.fsum(parts)
        """,
        relative="src/repro/engine/executor.py",
    )
    assert rules(floats.check_source(src)) == ["FD002"]


# -- FD003: set-iteration accumulation ----------------------------------------


def test_set_iteration_float_fold_is_flagged():
    src = source(
        """
        def fold(values):
            total = 0.0
            for value in set(values):
                total += value
            return total
        """
    )
    findings = floats.check_source(src)
    assert rules(findings) == ["FD003"]
    assert "'total +='" in findings[0].message


def test_set_iteration_integer_fold_passes():
    src = source(
        """
        def fold(rows):
            total = 0
            for row in set(rows):
                total += row.count
            return total
        """
    )
    assert floats.check_source(src) == []


def test_list_iteration_passes():
    src = source(
        """
        def fold(values):
            total = 0.0
            for value in sorted(values):
                total += value
            return total
        """
    )
    assert floats.check_source(src) == []


# -- the live tree ------------------------------------------------------------


def test_live_tree_is_clean(repo_root):
    assert floats.check(repo_root) == []
