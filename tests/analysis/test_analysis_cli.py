"""The ``python -m repro.analysis`` gate: exit codes, reports, filters."""

from __future__ import annotations

import json
import shutil
import subprocess
import sys

import pytest

from repro.analysis.core import REPORT_SCHEMA_VERSION, RULES
from repro.analysis.__main__ import main


@pytest.fixture()
def violating_root(repo_root, tmp_path):
    """A full copy of the tree with one injected FD001 violation."""
    shutil.copytree(repo_root / "src", tmp_path / "src")
    shutil.copy(repo_root / "README.md", tmp_path / "README.md")
    for path in sorted(repo_root.glob("BENCH_*.json")):
        shutil.copy(path, tmp_path / path.name)
    bad = tmp_path / "src" / "repro" / "engine" / "_bad_fold.py"
    bad.write_text("def fold(parts):\n    return sum(parts)\n", encoding="utf-8")
    return tmp_path


def test_clean_root_exits_zero(repo_root, capsys):
    assert main(["--root", str(repo_root)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_json_report_schema(repo_root, capsys):
    assert main(["--root", str(repo_root), "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema_version"] == REPORT_SCHEMA_VERSION
    assert report["ok"] is True
    assert report["findings"] == []
    assert report["counts"] == {}
    assert report["files_scanned"] > 100


def test_violation_exits_one_with_location(violating_root, capsys):
    assert main(["--root", str(violating_root)]) == 1
    out = capsys.readouterr().out
    assert "FD001" in out
    assert "_bad_fold.py:2:" in out


def test_violation_json_report(violating_root, capsys):
    assert main(["--root", str(violating_root), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["counts"] == {"FD001": 1}
    (finding,) = report["findings"]
    assert finding["rule"] == "FD001"
    assert finding["name"] == "builtin-sum-in-fold-path"
    assert finding["path"] == "src/repro/engine/_bad_fold.py"
    assert finding["line"] == 2


def test_rules_filter_scopes_the_gate(violating_root, capsys):
    assert main(["--root", str(violating_root), "--rules", "WS,LD"]) == 0
    assert main(["--root", str(violating_root), "--rules", "FD"]) == 1
    assert main(["--root", str(violating_root), "--rules", "FD001"]) == 1
    capsys.readouterr()


def test_unknown_rule_filter_exits_two(repo_root, capsys):
    assert main(["--root", str(repo_root), "--rules", "ZZ999"]) == 2
    assert "unknown rule filter" in capsys.readouterr().err


def test_bad_root_exits_two(tmp_path, capsys):
    assert main(["--root", str(tmp_path)]) == 2
    assert "src/repro" in capsys.readouterr().err


def test_list_rules_covers_the_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.id in out
        assert rule.name in out
    assert "why:" in out


def test_module_entry_point(repo_root):
    """The real ``python -m repro.analysis`` process gate exits 0."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--root", str(repo_root)],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout
