"""BB family: baselines vs the live scenario registry."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.analysis import bench_check
from repro.bench.registry import all_scenarios


def rules(findings):
    return sorted({finding.rule for finding in findings})


@pytest.fixture()
def baseline_root(repo_root, tmp_path):
    """A root whose BENCH_*.json set mirrors the live repo's."""
    for path in sorted(repo_root.glob("BENCH_*.json")):
        shutil.copy(path, tmp_path / path.name)
    return tmp_path


def test_live_tree_is_clean(repo_root):
    assert bench_check.check(repo_root) == []


def test_mirrored_baselines_are_clean(baseline_root):
    assert bench_check.check(baseline_root) == []


def test_missing_baseline_raises_bb001(baseline_root):
    victim = sorted(baseline_root.glob("BENCH_*.json"))[0]
    victim.unlink()
    findings = bench_check.check(baseline_root)
    assert rules(findings) == ["BB001"]
    assert findings[0].path == victim.name
    assert "repro.bench run" in findings[0].message


def test_every_scenario_missing_is_one_bb001_each(tmp_path):
    findings = bench_check.check(tmp_path)
    assert rules(findings) == ["BB001"]
    assert len(findings) == len(list(all_scenarios()))


def test_orphan_baseline_raises_bb002(baseline_root):
    donor = sorted(baseline_root.glob("BENCH_*.json"))[0]
    (baseline_root / "BENCH_ghost_scenario.json").write_text(
        donor.read_text(encoding="utf-8"), encoding="utf-8"
    )
    findings = bench_check.check(baseline_root)
    assert rules(findings) == ["BB002"]
    assert "ghost_scenario" in findings[0].message


def test_corrupt_json_raises_bb003(baseline_root):
    victim = sorted(baseline_root.glob("BENCH_*.json"))[0]
    victim.write_text("{not json", encoding="utf-8")
    findings = bench_check.check(baseline_root)
    assert rules(findings) == ["BB003"]
    assert "not valid JSON" in findings[0].message


def test_schema_invalid_baseline_raises_bb003(baseline_root):
    victim = sorted(baseline_root.glob("BENCH_*.json"))[0]
    payload = json.loads(victim.read_text(encoding="utf-8"))
    del payload["stats"]
    victim.write_text(json.dumps(payload), encoding="utf-8")
    findings = bench_check.check(baseline_root)
    assert rules(findings) == ["BB003"]


def test_mislabelled_scenario_field_raises_bb003(baseline_root):
    paths = sorted(baseline_root.glob("BENCH_*.json"))
    victim, donor = paths[0], paths[1]
    payload = json.loads(victim.read_text(encoding="utf-8"))
    payload["scenario"] = json.loads(donor.read_text(encoding="utf-8"))["scenario"]
    victim.write_text(json.dumps(payload), encoding="utf-8")
    findings = bench_check.check(baseline_root)
    assert rules(findings) == ["BB003"]
    assert "filename says" in findings[0].message
