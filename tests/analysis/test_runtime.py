"""The runtime lock-order detector.

The centrepiece provokes the real nested-read-under-waiting-writer
deadlock (documented in util/sync.py) and asserts the detector reports
it instead of hanging the suite.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis import runtime
from repro.analysis.runtime import LockHazardError, LockOrderDetector
from repro.util import sync
from repro.util.sync import RWLock


@pytest.fixture()
def detector():
    """Wire a private detector straight into the observer seam.

    Deliberately NOT runtime.install(): these tests provoke hazards on
    purpose, and the pytest plugin fails any test whose hazards land in
    the *active* detector.  Going through sync.set_observer keeps the
    deliberate hazards out of the plugin's view and restores whatever
    observer the suite had (the plugin's detector under
    REPRO_LOCK_DEBUG=1)."""
    previous = runtime.active_detector()
    private = LockOrderDetector()
    sync.set_observer(private)
    yield private
    sync.set_observer(previous)


def wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.001)


# -- re-entrant acquisition ---------------------------------------------------


def test_nested_read_under_waiting_writer_is_reported_not_deadlocked(detector):
    """The live deadlock: reader holds the lock, a writer queues up
    (writer preference), the same reader tries to read again.  Without
    the detector this blocks forever; with it the second acquisition
    raises before blocking."""
    lock = RWLock()
    lock.acquire_read()
    writer_done = threading.Event()

    def writer() -> None:
        lock.acquire_write()
        lock.release_write()
        writer_done.set()

    thread = threading.Thread(target=writer, name="waiting-writer")
    thread.start()
    try:
        wait_for(lambda: lock._writers_waiting == 1)
        with pytest.raises(LockHazardError) as excinfo:
            lock.acquire_read()
        assert "a writer is waiting" in str(excinfo.value)
        assert "nested-read deadlock" in str(excinfo.value)
    finally:
        lock.release_read()
        thread.join(timeout=5)
    assert not thread.is_alive()
    assert writer_done.is_set()
    assert [hazard.kind for hazard in detector.hazards] == ["reentrant-read"]


def test_latent_nested_read_is_reported(detector):
    """No writer waiting: the nested read would actually succeed today,
    but deadlocks the first time a write lands between the two
    acquisitions -- so it is vetoed anyway, as latent."""
    lock = RWLock()
    lock.acquire_read()
    try:
        with pytest.raises(LockHazardError) as excinfo:
            lock.acquire_read()
        assert "latent deadlock" in str(excinfo.value)
    finally:
        lock.release_read()
    assert [hazard.kind for hazard in detector.hazards] == ["reentrant-read"]


def test_read_under_own_write_is_reported(detector):
    lock = RWLock()
    lock.acquire_write()
    try:
        with pytest.raises(LockHazardError) as excinfo:
            lock.acquire_read()
        assert "not re-entrant" in str(excinfo.value)
    finally:
        lock.release_write()
    assert [hazard.kind for hazard in detector.hazards] == ["reentrant-write"]


def test_record_only_mode_does_not_raise():
    previous = runtime.active_detector()
    recording = LockOrderDetector(raise_on_reentry=False)
    sync.set_observer(recording)
    try:
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()  # latent hazard; recorded, not raised
        lock.release_read()
        lock.release_read()
        assert [hazard.kind for hazard in recording.hazards] == ["reentrant-read"]
    finally:
        sync.set_observer(previous)


def test_sequential_sections_are_clean(detector):
    lock = RWLock()
    with lock.read():
        pass
    with lock.write():
        pass
    with lock.read():
        pass
    assert detector.hazards == []


# -- cross-lock acquisition order ---------------------------------------------


def test_opposite_order_acquisition_closes_a_cycle(detector):
    lock_a, lock_b = RWLock(), RWLock()
    with lock_a.read():
        with lock_b.read():  # edge a -> b
            pass
    with lock_b.read():
        with lock_a.read():  # edge b -> a closes the cycle
            pass
    kinds = [hazard.kind for hazard in detector.hazards]
    assert kinds == ["order-cycle"]
    assert "opposite order" in detector.hazards[0].description
    # The rendered cycle closes back on the lock being acquired.
    assert "RWLock#1 -> RWLock#2 -> RWLock#1" in detector.hazards[0].description


def test_consistent_order_stays_clean(detector):
    lock_a, lock_b = RWLock(), RWLock()
    for _ in range(3):
        with lock_a.read():
            with lock_b.write():
                pass
    assert detector.hazards == []


def test_distinct_threads_have_distinct_held_stacks(detector):
    lock_a, lock_b = RWLock(), RWLock()
    lock_a.acquire_read()
    errors: list[Exception] = []

    def other_thread() -> None:
        try:
            # This thread holds nothing: acquiring b then a must not
            # inherit the main thread's held stack.
            with lock_b.read():
                pass
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    thread = threading.Thread(target=other_thread)
    thread.start()
    thread.join(timeout=5)
    lock_a.release_read()
    assert errors == []
    assert detector.hazards == []


# -- harness surface ----------------------------------------------------------


def test_report_and_reset(detector):
    assert detector.report() == "lock detector: no hazards"
    lock = RWLock()
    lock.acquire_read()
    with pytest.raises(LockHazardError):
        lock.acquire_read()
    lock.release_read()
    report = detector.report()
    assert "1 hazard(s)" in report
    assert "reentrant-read" in report
    detector.reset()
    assert detector.hazards == []
    assert detector.report() == "lock detector: no hazards"


def test_install_and_uninstall_round_trip():
    previous = runtime.active_detector()
    try:
        installed = runtime.install()
        assert runtime.active_detector() is installed
        runtime.uninstall()
        assert runtime.active_detector() is None
    finally:
        if previous is not None:
            runtime.install(previous)
        else:
            runtime.uninstall()


def test_enabled_by_env():
    assert runtime.enabled_by_env({"REPRO_LOCK_DEBUG": "1"})
    assert runtime.enabled_by_env({"REPRO_LOCK_DEBUG": "true"})
    assert runtime.enabled_by_env({"REPRO_LOCK_DEBUG": "ON"})
    assert not runtime.enabled_by_env({"REPRO_LOCK_DEBUG": "0"})
    assert not runtime.enabled_by_env({"REPRO_LOCK_DEBUG": ""})
    assert not runtime.enabled_by_env({})
