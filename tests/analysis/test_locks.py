"""LD family: lexical lock discipline over dataset.py and its callers."""

from __future__ import annotations

from repro.analysis import locks

from tests.analysis.conftest import source


def rules(findings):
    return [finding.rule for finding in findings]


DATASET_RELATIVE = "src/repro/api/dataset.py"


def dataset_source(text: str):
    return source(text, relative=DATASET_RELATIVE)


# -- LD001: unlocked *_inner call ---------------------------------------------


def test_unlocked_inner_call_is_flagged():
    src = dataset_source(
        """
        class Dataset:
            def query(self, request):
                return self._query_inner(request)
        """
    )
    findings = locks.check_dataset_source(src)
    assert rules(findings) == ["LD001"]
    assert "query()" in findings[0].message


def test_locked_inner_call_passes():
    src = dataset_source(
        """
        class Dataset:
            def query(self, request):
                with self._rwlock.read():
                    return self._query_inner(request)

            def append(self, batch):
                with self._rwlock.write():
                    return self._append_inner(batch)
        """
    )
    assert locks.check_dataset_source(src) == []


def test_inner_calling_inner_passes():
    src = dataset_source(
        """
        class Dataset:
            def _query_inner(self, request):
                return self._plan_inner(request)
        """
    )
    assert locks.check_dataset_source(src) == []


def test_module_level_helper_is_exempt():
    src = dataset_source(
        """
        def helper(dataset, request):
            return dataset._query_inner(request)
        """
    )
    assert locks.check_dataset_source(src) == []


# -- LD002: re-acquisition ----------------------------------------------------


def test_nested_section_on_same_lock_is_flagged():
    src = dataset_source(
        """
        class Dataset:
            def query(self, request):
                with self._rwlock.read():
                    with self._rwlock.read():
                        return self._query_inner(request)
        """
    )
    findings = locks.check_dataset_source(src)
    assert rules(findings) == ["LD002"]
    assert "not re-entrant" in findings[0].message


def test_sections_on_distinct_locks_pass():
    src = dataset_source(
        """
        class Dataset:
            def transfer(self, other):
                with self._rwlock.read():
                    with other._rwlock.read():
                        return self._copy_inner(other)
        """
    )
    assert locks.check_dataset_source(src) == []


def test_underscore_method_acquiring_is_flagged():
    src = dataset_source(
        """
        class Dataset:
            def _query_inner(self, request):
                with self._rwlock.read():
                    return request
        """
    )
    findings = locks.check_dataset_source(src)
    assert rules(findings) == ["LD002"]
    assert "_query_inner()" in findings[0].message


def test_dunder_method_acquiring_passes():
    src = dataset_source(
        """
        class Dataset:
            def __len__(self):
                with self._rwlock.read():
                    return self._len_inner()
        """
    )
    assert locks.check_dataset_source(src) == []


def test_bare_acquire_call_is_flagged():
    src = dataset_source(
        """
        class Dataset:
            def query(self, request):
                self._rwlock.acquire_read()
                try:
                    return self._query_inner(request)
                finally:
                    self._rwlock.release_read()
        """
    )
    findings = locks.check_dataset_source(src)
    assert "LD002" in rules(findings)
    assert any("context manager" in f.message for f in findings)


def test_pragma_suppresses_ld001():
    src = dataset_source(
        """
        class Dataset:
            def snapshot(self):
                # repro-lint: allow[LD001] called only from __init__ before publication
                return self._stats_inner()
        """
    )
    assert locks.check_dataset_source(src) == []


# -- LD003: callers outside dataset.py ----------------------------------------


def test_caller_reaching_inner_is_flagged():
    src = source(
        """
        def handle(dataset, request):
            return dataset._query_inner(request)
        """,
        relative="src/repro/server/http.py",
    )
    findings = locks.check_caller_source(src)
    assert rules(findings) == ["LD003"]
    assert "dataset._query_inner" in findings[0].message


def test_caller_touching_rwlock_is_flagged():
    src = source(
        """
        def handle(dataset):
            with dataset._rwlock.write():
                pass
        """,
        relative="src/repro/api/service.py",
    )
    findings = locks.check_caller_source(src)
    assert rules(findings) == ["LD003"]


def test_caller_using_public_surface_passes():
    src = source(
        """
        def handle(dataset, request):
            return dataset.query(request)
        """,
        relative="src/repro/server/http.py",
    )
    assert locks.check_caller_source(src) == []


# -- the live tree ------------------------------------------------------------


def test_live_tree_is_clean(repo_root):
    assert locks.check(repo_root) == []
