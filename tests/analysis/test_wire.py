"""WS family: wire-surface cross-checks, including the fake-op
regression (inject an op into a temp copy of the dispatch and assert
the missing route/doc entries surface)."""

from __future__ import annotations

import dataclasses

from repro.analysis import wire
from repro.analysis.core import load_source
from repro.analysis.wire import WireFiles

from tests.analysis.conftest import source


def rules(findings):
    return [finding.rule for finding in findings]


SERVICE = """
class GeoService:
    _VIEWS_KEYS = ("v", "op", "dataset")

    def run_dict(self, payload):
        op = payload.get("op")
        if op == "views":
            self._check_op_payload(payload, "views", self._VIEWS_KEYS)
            return {}
        return {}
"""

HTTP = """
class Handler:
    def do_GET(self):
        path = self.path
        if path == "/healthz":
            return 200
        return 404

    def do_POST(self):
        path = self.path
        if path in ("/query", "/views"):
            return 200
        return 404
"""

REQUEST = '_REQUEST_KEYS = ("v", "op", "dataset", "polygon")\n'

ERRORS = """
BAD_REQUEST = "bad_request"
ERROR_CODES = (BAD_REQUEST,)
HTTP_STATUS = {BAD_REQUEST: 400}
"""

README = """
Send POST /query payloads; management ops ride the same route with
{"op": "views"} envelopes.  Liveness is GET /healthz.  Views also
answer on POST /views.
"""


def make_files(
    service: str = SERVICE,
    http: str = HTTP,
    request: str = REQUEST,
    errors: str = ERRORS,
    readme: str = README,
) -> WireFiles:
    return WireFiles(
        service=source(service, relative="src/repro/api/service.py"),
        http=source(http, relative="src/repro/server/http.py"),
        request=source(request, relative="src/repro/api/request.py"),
        errors=source(errors, relative="src/repro/api/errors.py"),
        readme_text=readme,
    )


def test_consistent_surface_is_clean():
    assert wire.check_files(make_files()) == []


# -- WS001/WS002: op drift ----------------------------------------------------


def test_undocumented_unrouted_op_raises_ws001_and_ws002():
    ghost = SERVICE.replace(
        'if op == "views":',
        'if op == "ghost":\n            return {}\n        if op == "views":',
    )
    findings = wire.check_files(make_files(service=ghost))
    assert rules(findings) == ["WS001", "WS002"]
    assert all("ghost" in f.message for f in findings)


def test_documented_but_undispatched_op_raises_ws002():
    readme = README + '\nAlso accepts {"op": "compact"} payloads.\n'
    findings = wire.check_files(make_files(readme=readme))
    assert rules(findings) == ["WS002"]
    assert findings[0].path == "README.md"
    assert "compact" in findings[0].message


# -- WS003: route drift -------------------------------------------------------


def test_undocumented_route_raises_ws003():
    readme = README.replace("GET /healthz", "the health endpoint")
    findings = wire.check_files(make_files(readme=readme))
    assert rules(findings) == ["WS003"]
    assert "GET /healthz" in findings[0].message


def test_documented_dead_route_raises_ws003():
    readme = README + "\nDatasets are dropped with POST /drop.\n"
    findings = wire.check_files(make_files(readme=readme))
    assert rules(findings) == ["WS003"]
    assert findings[0].path == "README.md"
    assert "POST /drop" in findings[0].message


# -- WS004: key-schema gaps ---------------------------------------------------


def test_schema_missing_envelope_key_raises_ws004():
    service = SERVICE.replace(
        '_VIEWS_KEYS = ("v", "op", "dataset")', '_VIEWS_KEYS = ("v", "op")'
    )
    findings = wire.check_files(make_files(service=service))
    assert rules(findings) == ["WS004"]
    assert "dataset" in findings[0].message


def test_schema_for_undispatched_op_raises_ws004():
    service = SERVICE.replace(
        'self._check_op_payload(payload, "views", self._VIEWS_KEYS)',
        'self._check_op_payload(payload, "nope", self._VIEWS_KEYS)',
    )
    findings = wire.check_files(make_files(service=service))
    assert rules(findings) == ["WS004"]
    assert "'nope'" in findings[0].message


def test_request_keys_missing_envelope_raises_ws004():
    findings = wire.check_files(make_files(request='_REQUEST_KEYS = ("v", "polygon")\n'))
    assert rules(findings) == ["WS004"]
    assert findings[0].path == "src/repro/api/request.py"


# -- WS005: error-code/status drift -------------------------------------------


def test_code_without_status_raises_ws005():
    errors = ERRORS.replace(
        "ERROR_CODES = (BAD_REQUEST,)",
        'NOT_FOUND = "not_found"\nERROR_CODES = (BAD_REQUEST, NOT_FOUND)',
    )
    findings = wire.check_files(make_files(errors=errors))
    assert rules(findings) == ["WS005"]
    assert "'not_found'" in findings[0].message
    assert "500" in findings[0].message


def test_orphan_status_raises_ws005():
    errors = ERRORS.replace(
        "HTTP_STATUS = {BAD_REQUEST: 400}",
        'HTTP_STATUS = {BAD_REQUEST: 400, "gone": 410}',
    )
    findings = wire.check_files(make_files(errors=errors))
    assert rules(findings) == ["WS005"]
    assert "'gone'" in findings[0].message


# -- the fake-op regression ---------------------------------------------------


def test_fake_op_in_live_dispatch_copy_is_caught(repo_root, tmp_path):
    """Register an op in a temp copy of the real dispatch table and
    assert the checker reports the missing route and doc entries."""
    live = WireFiles.from_root(repo_root)
    marker = 'if op == "append":'
    assert marker in live.service.text
    injected = live.service.text.replace(
        marker,
        'if op == "fake_op":\n                return {"ok": True}\n            ' + marker,
        1,
    )
    copy = tmp_path / "service.py"
    copy.write_text(injected, encoding="utf-8")
    candidate = load_source(tmp_path, copy)
    files = dataclasses.replace(live, service=candidate)

    findings = wire.check_files(files)
    fake = [f for f in findings if "fake_op" in f.message]
    assert sorted({f.rule for f in fake}) == ["WS001", "WS002"]
    # Nothing else regresses: the only findings are about the fake op.
    assert fake == findings


# -- the live tree ------------------------------------------------------------


def test_live_tree_is_clean(repo_root):
    assert wire.check(repo_root) == []
