"""Tests for the filter predicate expressions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.storage.expr import ALWAYS_TRUE, Comparison, col
from repro.storage.schema import Schema
from repro.storage.table import PointTable


@pytest.fixture(scope="module")
def table() -> PointTable:
    values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    flags = np.array([0.0, 1.0, 0.0, 1.0, 1.0])
    return PointTable(Schema(["v", "f"]), np.zeros(5), np.zeros(5), {"v": values, "f": flags})


class TestComparisons:
    def test_all_operators(self, table):
        assert (col("v") == 3).mask(table).tolist() == [False, False, True, False, False]
        assert (col("v") != 3).mask(table).sum() == 4
        assert (col("v") < 3).mask(table).sum() == 2
        assert (col("v") <= 3).mask(table).sum() == 3
        assert (col("v") > 3).mask(table).sum() == 2
        assert (col("v") >= 3).mask(table).sum() == 3

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("v", "~", 1.0)

    def test_repr_stable(self):
        assert repr(col("v") >= 4) == "v >= 4"


class TestCombinators:
    def test_and(self, table):
        predicate = (col("v") > 1) & (col("f") == 1)
        assert predicate.mask(table).tolist() == [False, True, False, True, True]

    def test_or(self, table):
        predicate = (col("v") == 1) | (col("v") == 5)
        assert predicate.mask(table).sum() == 2

    def test_not(self, table):
        predicate = ~(col("f") == 1)
        assert predicate.mask(table).tolist() == [True, False, True, False, False]

    def test_nested_repr(self, table):
        predicate = ((col("v") > 1) & (col("f") == 1)) | ~(col("v") == 2)
        assert "AND" in repr(predicate) and "OR" in repr(predicate)


class TestRangePredicates:
    def test_between(self, table):
        assert col("v").between(2, 4).mask(table).tolist() == [False, True, True, True, False]

    def test_between_reversed_rejected(self):
        with pytest.raises(QueryError):
            col("v").between(4, 2)

    def test_isin(self, table):
        assert col("v").isin([1, 5, 9]).mask(table).sum() == 2

    def test_isin_empty_rejected(self):
        with pytest.raises(QueryError):
            col("v").isin([])


class TestSelectivity:
    def test_always_true(self, table):
        assert ALWAYS_TRUE.selectivity(table) == 1.0
        assert bool(ALWAYS_TRUE.mask(table).all())

    def test_fractions(self, table):
        assert (col("f") == 1).selectivity(table) == pytest.approx(0.6)
        assert (col("v") > 100).selectivity(table) == 0.0

    def test_empty_table(self):
        empty = PointTable(Schema(["v"]), np.zeros(0), np.zeros(0), {"v": np.zeros(0)})
        assert (col("v") > 0).selectivity(empty) == 0.0
