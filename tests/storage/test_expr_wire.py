"""Predicate wire syntax: round-trips, registry, malformed payloads."""

from __future__ import annotations

import json

import pytest

from repro.errors import QueryError
from repro.storage.expr import (
    WIRE_OPS,
    And,
    Between,
    Comparison,
    IsIn,
    Not,
    Or,
    col,
    predicate_from_wire,
    predicate_to_wire,
)

COMPARISONS = [
    {"col": "distance", "op": ">=", "value": 4},
    {"col": "distance", "op": ">", "value": 4.5},
    {"col": "fare", "op": "<", "value": 100},
    {"col": "fare", "op": "<=", "value": 99.5},
    {"col": "passenger_cnt", "op": "==", "value": 1},
    {"col": "passenger_cnt", "op": "!=", "value": 0},
    {"col": "fare", "op": "between", "value": [5, 20]},
    {"col": "passenger_cnt", "op": "in", "value": [1, 2, 4]},
]


class TestRoundTrip:
    @pytest.mark.parametrize("payload", COMPARISONS)
    def test_comparison_round_trip(self, payload):
        predicate = predicate_from_wire(payload)
        wire = predicate_to_wire(predicate)
        assert predicate_from_wire(wire).key == predicate.key
        json.dumps(wire)  # JSON-compatible by construction

    def test_combinator_round_trip(self):
        payload = {
            "and": [
                {"col": "distance", "op": ">=", "value": 4},
                {
                    "or": [
                        {"col": "fare", "op": "between", "value": [5, 20]},
                        {"not": {"col": "passenger_cnt", "op": "==", "value": 1}},
                    ]
                },
            ]
        }
        predicate = predicate_from_wire(payload)
        assert isinstance(predicate, And)
        assert predicate_from_wire(predicate_to_wire(predicate)).key == predicate.key

    def test_wire_matches_expression_language(self):
        """The wire form and the ``col()`` expression language build the
        same predicate (same render string, same masks)."""
        wired = predicate_from_wire(
            {
                "and": [
                    {"col": "distance", "op": ">=", "value": 4},
                    {"col": "passenger_cnt", "op": "==", "value": 1},
                ]
            }
        )
        built = (col("distance") >= 4) & (col("passenger_cnt") == 1)
        assert wired.key == built.key

    def test_programmatic_predicates_serialise(self):
        for predicate in (
            Comparison("fare", ">", 2.0),
            Between("fare", 1.0, 2.0),
            IsIn("seats", (1.0, 2.0)),
            Or((Comparison("a", "<", 1.0), Comparison("b", ">", 2.0))),
            Not(Comparison("a", "==", 0.0)),
        ):
            assert predicate_from_wire(predicate_to_wire(predicate)).key == predicate.key


class TestColumns:
    def test_columns_collects_every_reference(self):
        predicate = predicate_from_wire(
            {
                "or": [
                    {"col": "a", "op": ">", "value": 1},
                    {"not": {"col": "b", "op": "in", "value": [1, 2]}},
                ]
            }
        )
        assert predicate.columns() == {"a", "b"}

    def test_key_is_stable_across_parses(self):
        payload = {"col": "distance", "op": ">=", "value": 4}
        assert predicate_from_wire(payload).key == predicate_from_wire(payload).key

    def test_key_is_canonical_across_construction_routes(self):
        """The same logical predicate must produce ONE key however it
        was built -- fluent ints, wire floats, chained `&` vs flat
        `and` lists -- or the view cache builds duplicate blocks
        (code-review regression)."""
        assert (col("x") >= 5).key == predicate_from_wire(
            {"col": "x", "op": ">=", "value": 5.0}
        ).key
        assert Between("x", 5, 20).key == predicate_from_wire(
            {"col": "x", "op": "between", "value": [5.0, 20.0]}
        ).key
        assert IsIn("x", (1, 2)).key == predicate_from_wire(
            {"col": "x", "op": "in", "value": [1.0, 2.0]}
        ).key
        a, b, c = col("x") > 1, col("y") > 2, col("z") > 3
        chained = a & b & c
        flat = predicate_from_wire(
            {
                "and": [
                    {"col": "x", "op": ">", "value": 1},
                    {"col": "y", "op": ">", "value": 2},
                    {"col": "z", "op": ">", "value": 3},
                ]
            }
        )
        assert chained.key == flat.key
        assert ((col("x") > 1) | (col("y") > 2) | (col("z") > 3)).key == predicate_from_wire(
            {
                "or": [
                    {"col": "x", "op": ">", "value": 1},
                    {"col": "y", "op": ">", "value": 2},
                    {"col": "z", "op": ">", "value": 3},
                ]
            }
        ).key
        # Round-tripping through the wire form lands on the same key.
        assert predicate_from_wire(predicate_to_wire(chained)).key == chained.key

    def test_key_is_full_precision_not_display_form(self):
        """Keys must distinguish every distinct constant -- the %g
        display form truncates to 6 significant digits, which would
        serve one predicate's cached view for another (code-review
        regression)."""
        near = [
            ({"col": "fare", "op": ">=", "value": 1234567},
             {"col": "fare", "op": ">=", "value": 1234568}),
            ({"col": "fare", "op": ">=", "value": 0.12345678},
             {"col": "fare", "op": ">=", "value": 0.12345699}),
            ({"col": "fare", "op": "between", "value": [0, 1234567]},
             {"col": "fare", "op": "between", "value": [0, 1234568]}),
            ({"col": "fare", "op": "in", "value": [1234567]},
             {"col": "fare", "op": "in", "value": [1234568]}),
        ]
        for a, b in near:
            ka, kb = predicate_from_wire(a).key, predicate_from_wire(b).key
            assert ka != kb, (ka, kb)
        nested_a = predicate_from_wire({"not": {"col": "fare", "op": ">", "value": 1234567}})
        nested_b = predicate_from_wire({"not": {"col": "fare", "op": ">", "value": 1234568}})
        assert nested_a.key != nested_b.key


class TestMalformed:
    @pytest.mark.parametrize(
        "payload",
        [
            "distance >= 4",  # not an object
            42,
            None,
            {},  # missing everything
            {"col": "x"},  # missing op/value
            {"col": "x", "op": ">="},  # missing value
            {"op": ">=", "value": 4},  # missing col
            {"col": "x", "op": "~", "value": 4},  # unknown operator
            {"col": "x", "op": "LIKE", "value": 4},
            {"col": "", "op": ">=", "value": 4},  # empty column
            {"col": 7, "op": ">=", "value": 4},  # non-string column
            {"col": "x", "op": ">=", "value": "four"},  # non-numeric value
            {"col": "x", "op": ">=", "value": True},  # bool is not a number
            {"col": "x", "op": "between", "value": [1]},  # wrong arity
            {"col": "x", "op": "between", "value": [2, 1, 0]},
            {"col": "x", "op": "in", "value": []},  # empty IN list
            {"col": "x", "op": "in", "value": "abc"},
            {"and": []},  # empty combinator
            {"and": [{"col": "x", "op": ">", "value": 1}]},  # single operand
            {"or": {"col": "x", "op": ">", "value": 1}},  # not a list
            {"and": [], "col": "x"},  # mixed combinator/comparison keys
            {"xor": [{"col": "x", "op": ">", "value": 1}]},  # unknown key
        ],
    )
    def test_raises_query_error(self, payload):
        with pytest.raises(QueryError):
            predicate_from_wire(payload)

    def test_between_bounds_validated(self):
        with pytest.raises(QueryError):
            predicate_from_wire({"col": "x", "op": "between", "value": [5, 1]})

    def test_registry_drives_supported_ops(self):
        assert set(WIRE_OPS) == {"==", "!=", "<", "<=", ">", ">=", "between", "in"}
        message = ""
        try:
            predicate_from_wire({"col": "x", "op": "regex", "value": 1})
        except QueryError as error:
            message = str(error)
        assert "regex" in message and "between" in message  # names the registry
