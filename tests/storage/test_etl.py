"""Tests for the extract phase (cleaning, keying, sorting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import EARTH
from repro.errors import BuildError
from repro.geometry.bbox import BoundingBox
from repro.storage.etl import BaseData, CleaningRules, extract, extract_isolated
from repro.storage.expr import col
from repro.storage.schema import Schema
from repro.storage.table import PointTable
from repro.util.timing import Stopwatch


def _dirty_table(count: int = 5000) -> PointTable:
    rng = np.random.default_rng(8)
    xs = rng.uniform(-74.2, -73.7, count)
    ys = rng.uniform(40.5, 40.9, count)
    values = rng.gamma(3.0, 5.0, count)
    # Inject outliers.
    xs[::100] = 500.0
    values[::50] = -1.0
    values[::77] = np.nan
    return PointTable(Schema(["v"]), xs, ys, {"v": values})


class TestExtract:
    def test_output_sorted_by_key(self):
        base = extract(_dirty_table(), EARTH)
        keys = base.keys
        assert bool((keys[1:] >= keys[:-1]).all())

    def test_keys_match_locations(self):
        base = extract(_dirty_table(), EARTH)
        recomputed = EARTH.leaf_ids(base.table.xs, base.table.ys)
        assert bool((recomputed == base.keys).all())

    def test_cleaning_drops_outliers(self):
        table = _dirty_table()
        rules = CleaningRules(
            bounds=BoundingBox(-74.3, 40.4, -73.6, 41.0),
            column_ranges={"v": (0.0, 1e6)},
        )
        base = extract(table, EARTH, rules)
        assert len(base) < len(table)
        assert bool((base.table.xs <= -73.6).all())
        assert bool((base.table.column("v") >= 0).all())
        assert bool(np.isfinite(base.table.column("v")).all())

    def test_no_rules_keeps_everything(self):
        table = _dirty_table()
        base = extract(table, EARTH)
        assert len(base) == len(table)

    def test_stopwatch_records_phases(self):
        watch = Stopwatch()
        extract(_dirty_table(), EARTH, CleaningRules(), stopwatch=watch)
        assert watch.seconds("sorting") > 0
        assert "cleaning" in watch.phases

    def test_deterministic(self):
        a = extract(_dirty_table(), EARTH)
        b = extract(_dirty_table(), EARTH)
        assert bool((a.keys == b.keys).all())
        assert np.array_equal(a.table.column("v"), b.table.column("v"), equal_nan=True)


class TestBaseData:
    def test_rejects_unsorted_keys(self):
        table = _dirty_table(10)
        keys = np.arange(10, 0, -1, dtype=np.int64) * 2 + 1
        with pytest.raises(BuildError):
            BaseData(EARTH, table, keys)

    def test_rejects_length_mismatch(self):
        table = _dirty_table(10)
        with pytest.raises(BuildError):
            BaseData(EARTH, table, np.ones(5, dtype=np.int64))

    def test_filtered_keeps_order_and_alignment(self):
        base = extract(_dirty_table(), EARTH, CleaningRules(column_ranges={"v": (0, 1e9)}))
        filtered = base.filtered(col("v") >= 10)
        assert bool((filtered.keys[1:] >= filtered.keys[:-1]).all())
        assert bool((filtered.table.column("v") >= 10).all())
        recomputed = EARTH.leaf_ids(filtered.table.xs, filtered.table.ys)
        assert bool((recomputed == filtered.keys).all())

    def test_subset_prefix(self):
        base = extract(_dirty_table(), EARTH)
        subset = base.subset(100)
        assert len(subset) == 100
        assert bool((subset.keys == base.keys[:100]).all())

    def test_memory_accounting(self):
        base = extract(_dirty_table(), EARTH)
        assert base.memory_bytes() == base.table.memory_bytes() + base.keys.nbytes


class TestIsolatedPipeline:
    def test_isolated_equals_filtered_incremental(self):
        """Filter-then-sort and sort-then-filter agree row for row."""
        table = _dirty_table()
        rules = CleaningRules(column_ranges={"v": (0.0, 1e9)})
        predicate = col("v") >= 12
        incremental = extract(table, EARTH, rules).filtered(predicate)
        isolated = extract_isolated(table, EARTH, predicate, rules)
        assert len(incremental) == len(isolated)
        assert bool((incremental.keys == isolated.keys).all())
        assert np.allclose(
            np.sort(incremental.table.column("v")), np.sort(isolated.table.column("v"))
        )
