"""Tests for Schema, ColumnSpec, and PointTable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.schema import ColumnKind, ColumnSpec, Schema
from repro.storage.table import PointTable


def _table(count: int = 10) -> PointTable:
    rng = np.random.default_rng(0)
    return PointTable(
        Schema(["a", ColumnSpec("t", ColumnKind.TEMPORAL)]),
        rng.uniform(-1, 1, count),
        rng.uniform(-1, 1, count),
        {"a": rng.normal(0, 1, count), "t": rng.integers(0, 100, count)},
    )


class TestSchema:
    def test_string_shorthand(self):
        schema = Schema(["x", "y"])
        assert schema.names == ["x", "y"]
        assert schema.spec("x").kind is ColumnKind.NUMERIC

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_unknown_column(self):
        schema = Schema(["a"])
        with pytest.raises(SchemaError):
            schema.spec("b")
        with pytest.raises(SchemaError):
            schema.position("b")

    def test_dtype_by_kind(self):
        assert ColumnSpec("n").dtype == np.dtype(np.float64)
        assert ColumnSpec("t", ColumnKind.TEMPORAL).dtype == np.dtype(np.int64)

    def test_subset_preserves_specs(self):
        schema = Schema(["a", ColumnSpec("t", ColumnKind.TEMPORAL), "c"])
        sub = schema.subset(["t", "a"])
        assert sub.names == ["t", "a"]
        assert sub.spec("t").kind is ColumnKind.TEMPORAL

    def test_equality_and_membership(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])
        assert "a" in Schema(["a"])
        assert "z" not in Schema(["a"])


class TestPointTable:
    def test_length_and_columns(self):
        table = _table(25)
        assert len(table) == 25
        assert table.column("a").shape == (25,)
        assert table.column("t").dtype == np.dtype(np.int64)

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            PointTable(Schema(["a"]), np.zeros(3), np.zeros(3), {})

    def test_extra_column_rejected(self):
        with pytest.raises(SchemaError):
            PointTable(
                Schema(["a"]),
                np.zeros(3),
                np.zeros(3),
                {"a": np.zeros(3), "b": np.zeros(3)},
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            PointTable(Schema(["a"]), np.zeros(3), np.zeros(4), {"a": np.zeros(3)})
        with pytest.raises(SchemaError):
            PointTable(Schema(["a"]), np.zeros(3), np.zeros(3), {"a": np.zeros(5)})

    def test_columns_read_only(self):
        table = _table()
        with pytest.raises(ValueError):
            table.xs[0] = 5.0
        with pytest.raises(ValueError):
            table.column("a")[0] = 5.0

    def test_filter(self):
        table = _table(50)
        mask = table.column("a") > 0
        filtered = table.filter(mask)
        assert len(filtered) == int(mask.sum())
        assert bool((filtered.column("a") > 0).all())

    def test_take_preserves_order(self):
        table = _table(10)
        taken = table.take(np.array([3, 1, 4]))
        assert taken.xs.tolist() == [table.xs[3], table.xs[1], table.xs[4]]

    def test_head(self):
        assert len(_table(10).head(4)) == 4
        assert len(_table(3).head(10)) == 3

    def test_with_columns(self):
        table = _table()
        projected = table.with_columns(["a"])
        assert projected.schema.names == ["a"]
        with pytest.raises(SchemaError):
            projected.column("t")

    def test_concat(self):
        a = _table(5)
        b = _table(7)
        combined = a.concat(b)
        assert len(combined) == 12
        with pytest.raises(SchemaError):
            a.concat(
                PointTable(Schema(["z"]), np.zeros(2), np.zeros(2), {"z": np.zeros(2)})
            )

    def test_memory_bytes(self):
        table = _table(100)
        # xs + ys (float64) + a (float64) + t (int64) = 4 * 8 * 100
        assert table.memory_bytes() == 4 * 8 * 100

    def test_bounding_box(self):
        table = _table(30)
        box = table.bounding_box()
        assert bool(box.contains_points(table.xs, table.ys).all())
