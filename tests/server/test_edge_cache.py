"""Unit tests of the HTTP-edge response cache: freshness states under
an injected clock, version invalidation, single-flight revalidation,
LRU bounds, counters."""

from __future__ import annotations

import threading

import pytest

from repro.server import EdgeCache, body_key

V1 = {"small": 1}
V2 = {"small": 2}


class Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock() -> Clock:
    return Clock()


@pytest.fixture()
def cache(clock) -> EdgeCache:
    return EdgeCache(ttl=5.0, stale_ttl=30.0, max_entries=4, clock=clock)


def store(cache: EdgeCache, key: str = "k", versions=V1) -> None:
    cache.store(key, b'{"ok": true}', 200, versions)


class TestBodyKey:
    def test_depends_on_path_and_body(self):
        assert body_key("/query", b"abc") == body_key("/query", b"abc")
        assert body_key("/query", b"abc") != body_key("/query", b"abd")
        assert body_key("/query", b"abc") != body_key("/other", b"abc")

    def test_raw_bytes_not_parsed_json(self):
        """Whitespace-different bodies are distinct keys by design: the
        edge must never parse a body to decide equality."""
        assert body_key("/query", b'{"a": 1}') != body_key("/query", b'{"a":1}')


class TestFreshness:
    def test_fresh_hit_within_ttl(self, cache, clock):
        store(cache)
        clock.now += 5.0  # inclusive boundary
        state, entry = cache.lookup("k", V1)
        assert state == "hit"
        assert entry.body == b'{"ok": true}'
        assert cache.hits == 1

    def test_stale_between_ttl_and_stale_window(self, cache, clock):
        store(cache)
        clock.now += 5.1
        state, entry = cache.lookup("k", V1)
        assert state == "stale"
        assert entry is not None
        assert cache.stale_served == 1

    def test_expired_past_stale_window_is_miss(self, cache, clock):
        store(cache)
        clock.now += 35.1
        state, entry = cache.lookup("k", V1)
        assert state == "miss"
        assert entry is None
        assert len(cache) == 0  # expired entries are dropped

    def test_unknown_key_is_miss(self, cache):
        assert cache.lookup("nope", V1) == ("miss", None)
        assert cache.misses == 1


class TestVersionInvalidation:
    def test_version_bump_kills_fresh_entry(self, cache):
        """The same version bump that invalidates the result tier kills
        the edge entry -- no TTL grace for stale data."""
        store(cache, versions=V1)
        state, entry = cache.lookup("k", V2)
        assert state == "miss"
        assert entry is None
        assert cache.invalidated == 1
        assert len(cache) == 0

    def test_new_dataset_in_registry_invalidates(self, cache):
        store(cache, versions=V1)
        state, _ = cache.lookup("k", {"small": 1, "other": 1})
        assert state == "miss"
        assert cache.invalidated == 1

    def test_matching_versions_still_hit(self, cache):
        store(cache, versions=V1)
        assert cache.lookup("k", dict(V1))[0] == "hit"


class TestBounds:
    def test_lru_eviction_at_capacity(self, cache):
        for index in range(6):  # max_entries=4
            store(cache, key=f"k{index}")
        assert len(cache) == 4
        assert cache.evictions == 2
        assert cache.lookup("k0", V1)[0] == "miss"  # oldest went first
        assert cache.lookup("k5", V1)[0] == "hit"

    def test_hit_refreshes_lru_position(self, cache):
        for index in range(4):
            store(cache, key=f"k{index}")
        cache.lookup("k0", V1)  # touch the oldest
        store(cache, key="k4")  # evicts k1, not k0
        assert cache.lookup("k0", V1)[0] == "hit"
        assert cache.lookup("k1", V1)[0] == "miss"

    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            EdgeCache(ttl=-1.0)
        with pytest.raises(ValueError):
            EdgeCache(max_entries=0)


class TestRevalidation:
    def test_single_flight_per_key(self, cache):
        release = threading.Event()
        started = threading.Event()

        def recompute() -> None:
            started.set()
            release.wait(timeout=10)
            store(cache)

        assert cache.revalidate("k", recompute) is True
        started.wait(timeout=10)
        # A second stale hit of the same key while in flight: no thread.
        assert cache.revalidate("k", lambda: None) is False
        assert cache.revalidations == 1
        release.set()
        deadline = threading.Event()
        for _ in range(100):
            if cache.lookup("k", V1)[0] == "hit":
                break
            deadline.wait(0.05)
        assert cache.lookup("k", V1)[0] == "hit"

    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_marker_clears_after_failure(self, cache):
        def explode() -> None:
            raise RuntimeError("recompute failed")

        assert cache.revalidate("k", explode) is True
        for _ in range(100):
            if "k" not in cache._revalidating:
                break
            threading.Event().wait(0.05)
        # The in-flight marker cleared, so the key can revalidate again.
        assert cache.revalidate("k", lambda: None) is True


class TestMaintenance:
    def test_clear_keeps_counters(self, cache):
        store(cache)
        cache.lookup("k", V1)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.hits == 1

    def test_reset_zeroes_counters(self, cache):
        store(cache)
        cache.lookup("k", V1)
        cache.reset()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.stats()["hit_rate"] == 0.0

    def test_stats_shape_and_hit_rate(self, cache, clock):
        store(cache)
        cache.lookup("k", V1)  # hit
        clock.now += 6.0
        cache.lookup("k", V1)  # stale (still counts as served)
        cache.lookup("zzz", V1)  # miss
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["stale_served"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        assert stats["entries"] == 1
        assert stats["ttl_s"] == 5.0
