"""Integration tests of the wire server: real sockets on ephemeral
ports, round-trips on every block kind, error mapping, edge-cache
states, graceful shutdown."""

from __future__ import annotations

import json

import pytest

from repro.api import GeoService
from repro.api.errors import HTTP_STATUS, http_status
from repro.server import EdgeCache, GeoClient, GeoHTTPServer

from tests.server.conftest import answer, build_dataset, make_rows, wire_query


class TestRoundTripAllKinds:
    """query / append / stats / healthz against plain, sharded, and
    adaptive datasets behind one live server each."""

    @pytest.fixture()
    def kind_server(self, small_base, kind):
        service = GeoService()
        service.register("small", build_dataset(small_base, kind))
        with GeoHTTPServer(service, port=0, edge=EdgeCache(ttl=600.0)) as running:
            with GeoClient.for_server(running) as connected:
                yield running, connected, service

    def test_query_matches_in_process(self, kind_server):
        server, client, service = kind_server
        reply = client.query(wire_query())
        assert reply.status == 200
        assert reply.ok
        assert answer(reply.body) == answer(service.run_dict(wire_query()))
        assert reply.body["data"]["count"] > 0

    def test_append_then_query_reflects_rows(self, kind_server):
        server, client, service = kind_server
        before = client.query(wire_query()).body
        rows = make_rows()
        appended = client.append(rows, dataset="small")
        assert appended.status == 200
        assert appended.x_cache == "bypass"
        assert appended.body["data"]["appended"] == len(rows)
        assert appended.body["version"] == 2
        after = client.query(wire_query())
        assert after.x_cache == "miss"  # the version bump killed the entry
        assert after.body["version"] == 2
        assert after.body["data"]["count"] >= before["data"]["count"]
        assert answer(after.body) == answer(service.run_dict(wire_query()))

    def test_healthz_and_stats(self, kind_server):
        server, client, _ = kind_server
        health = client.healthz()
        assert health.status == 200
        assert health.body == {"ok": True, "status": "ok", "datasets": 1}
        client.query(wire_query())
        stats = client.stats().body
        assert stats["ok"]
        assert stats["server"]["requests"] >= 2
        assert stats["server"]["by_route"]["POST /query"] >= 1
        assert stats["edge"]["ttl_s"] == 600.0
        assert stats["datasets"]["small"]["version"] == 1
        assert "cache" in stats

    def test_datasets_catalog(self, kind_server):
        _, client, service = kind_server
        catalog = client.datasets()
        assert catalog.status == 200
        assert catalog.body["ok"]
        assert catalog.body["datasets"] == service.describe()["datasets"]
        assert catalog.body["datasets"][0]["name"] == "small"


class TestBatch:
    def test_batch_is_one_engine_pass_with_member_envelopes(self, client, service):
        payloads = [wire_query(), wire_query()]
        reply = client.query_batch(payloads)
        assert reply.status == 200
        assert isinstance(reply.body, list) and len(reply.body) == 2
        want = [answer(envelope) for envelope in service.run_batch_dict(payloads)]
        assert [answer(envelope) for envelope in reply.body] == want

    def test_bad_member_fails_the_batch_and_is_uncacheable(self, client, edge):
        """The engine pass is all-or-nothing (run_batch_dict's
        retry-safety contract): one bad member fails every sibling, and
        the failed batch never enters the edge."""
        good, bad = wire_query(), wire_query(dataset="nope")
        reply = client.query_batch([good, bad])
        assert reply.status == 200  # members carry their own envelopes
        assert [member["ok"] for member in reply.body] == [False, False]
        assert reply.body[1]["error"]["code"] == "unknown_dataset"
        assert reply.x_cache == "miss"
        assert client.query_batch([good, bad]).x_cache == "miss"  # resend recomputes
        assert len(edge) == 0


class TestErrorMapping:
    def test_table_is_total_and_sane(self):
        assert HTTP_STATUS["bad_request"] == 400
        assert HTTP_STATUS["unknown_dataset"] == 404
        assert HTTP_STATUS["not_found"] == 404
        assert HTTP_STATUS["unsupported_op"] == 400
        assert HTTP_STATUS["internal"] == 500
        assert http_status("never-heard-of-it") == 500

    @pytest.mark.parametrize(
        ("payload", "status", "code"),
        [
            (wire_query(dataset="nope"), 404, "unknown_dataset"),
            ({"v": 2, "dataset": "small"}, 400, "bad_request"),
            (
                {"v": 2, "dataset": "small", "region": {"bogus": 1}, "aggregates": ["count"]},
                400,
                "bad_region",
            ),
            (
                dict(wire_query(), aggregates=["count", "median:fare"]),
                400,
                "bad_aggregate",
            ),
        ],
    )
    def test_api_errors_map_to_statuses(self, client, payload, status, code):
        reply = client.query(payload)
        assert reply.status == status
        assert reply.body["ok"] is False
        assert reply.body["error"]["code"] == code

    def test_unknown_routes_are_404_envelopes(self, client):
        for method, path in (("GET", "/zzz"), ("POST", "/zzz")):
            reply = client.request(method, path, payload={} if method == "POST" else None)
            assert reply.status == 404
            assert reply.body["error"]["code"] == "not_found"

    def test_invalid_json_and_missing_body(self, client, server):
        import http.client

        reply = client.request("POST", "/query", payload=None)  # no Content-Length
        assert reply.status == 400
        assert reply.body["error"]["code"] == "bad_request"
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("POST", "/query", body=b"{not json", headers={"Content-Length": "9"})
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "bad_request"
        finally:
            conn.close()

    def test_append_cannot_override_op(self, client):
        reply = client.request(
            "POST", "/append", {"op": "query", "rows": [], "dataset": "small"}
        )
        assert reply.status == 400
        assert reply.body["error"]["code"] == "bad_request"

    def test_error_responses_are_never_cached(self, client, edge):
        client.query(wire_query(dataset="nope"))
        assert len(edge) == 0
        assert client.query(wire_query(dataset="nope")).x_cache == "miss"


class TestEdgeStates:
    def test_miss_then_hit_replays_bytes(self, client, edge):
        first = client.query(wire_query())
        second = client.query(wire_query())
        assert (first.x_cache, second.x_cache) == ("miss", "hit")
        # Byte replay: even the stats block matches the stored answer.
        assert second.body == first.body
        assert edge.hits == 1

    def test_different_bodies_are_different_keys(self, client, edge):
        client.query(wire_query())
        other = client.query(wire_query(region={"bbox": [-74.0, 40.7, -73.9, 40.8]}))
        assert other.x_cache == "miss"
        assert len(edge) == 2

    def test_stale_serves_then_revalidates(self, small_base):
        import time

        clock = {"now": 100.0}
        edge = EdgeCache(ttl=5.0, stale_ttl=600.0, clock=lambda: clock["now"])
        service = GeoService()
        service.register("small", build_dataset(small_base, "geoblock"))
        with GeoHTTPServer(service, port=0, edge=edge) as server:
            with GeoClient.for_server(server) as client:
                fresh = client.query(wire_query())
                assert fresh.x_cache == "miss"
                clock["now"] += 10.0  # past the TTL, inside the stale window
                stale = client.query(wire_query())
                assert stale.x_cache == "stale"
                assert stale.body == fresh.body  # served instantly, old bytes
                deadline = time.time() + 10.0
                while time.time() < deadline:
                    reply = client.query(wire_query())
                    if reply.x_cache == "hit":  # background refresh landed
                        break
                    time.sleep(0.02)
                assert reply.x_cache == "hit"
                assert edge.revalidations >= 1

    def test_no_edge_means_no_x_cache_header(self, small_base):
        service = GeoService()
        service.register("small", build_dataset(small_base, "geoblock"))
        with GeoHTTPServer(service, port=0, edge=None) as server:
            with GeoClient.for_server(server) as client:
                reply = client.query(wire_query())
                assert reply.status == 200
                assert reply.x_cache is None
                assert client.stats().body["edge"] is None


class TestLifecycle:
    def test_graceful_shutdown_refuses_new_connections(self, small_base):
        service = GeoService()
        service.register("small", build_dataset(small_base, "geoblock"))
        server = GeoHTTPServer(service, port=0)
        server.start()
        port = server.port
        with GeoClient.for_server(server) as client:
            assert client.healthz().status == 200
        server.stop()
        with pytest.raises(OSError):
            GeoClient("127.0.0.1", port, timeout=2).healthz()

    def test_start_twice_raises(self, server):
        with pytest.raises(RuntimeError):
            server.start()

    def test_serves_a_dataset_opened_from_disk(self, small_base, tmp_path):
        """The --datasets path: save a block, open it by path, serve it."""
        path = tmp_path / "small.npz"
        build_dataset(small_base, "geoblock").save(path)
        service = GeoService()
        service.open("small", path)
        with GeoHTTPServer(service, port=0) as server:
            with GeoClient.for_server(server) as client:
                reply = client.query(wire_query())
                assert reply.status == 200
                assert reply.body["data"]["count"] > 0

    def test_bounded_threads_still_serve(self, small_base):
        service = GeoService()
        service.register("small", build_dataset(small_base, "geoblock"))
        with GeoHTTPServer(service, port=0, threads=2) as server:
            with GeoClient.for_server(server) as client:
                for _ in range(4):
                    assert client.query(wire_query()).status == 200


class TestCli:
    def test_refuses_to_serve_nothing(self, capsys):
        from repro.server.__main__ import main

        assert main([]) == 2
        assert "nothing to serve" in capsys.readouterr().err

    def test_rejects_malformed_dataset_spec(self, capsys):
        from repro.server.__main__ import main

        assert main(["--datasets", "no-equals-sign"]) == 2
        assert "name=path" in capsys.readouterr().err

    def test_rejects_unreadable_dataset_path(self, capsys, tmp_path):
        from repro.server.__main__ import main

        assert main(["--datasets", f"x={tmp_path}/missing.geoblock"]) == 2
        assert "cannot open" in capsys.readouterr().err

    def test_rejects_bad_thread_count(self, capsys):
        from repro.server.__main__ import main

        assert main(["--demo", "--threads", "0"]) == 2
        assert "--threads" in capsys.readouterr().err
