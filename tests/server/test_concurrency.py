"""Thread-safety of the serving tier: the readers-writer lock, the
append/query hammer (no torn reads), the registry lock, and the load
generator itself."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Dataset, GeoService
from repro.bench.loadgen import LoadResult, TimedReply, percentile, run_load
from repro.bench.scenario import BenchError
from repro.server import EdgeCache, GeoClient, GeoHTTPServer
from repro.util.sync import RWLock

from tests.server.conftest import answer, build_dataset, make_rows, wire_query


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=10)

        def reader() -> None:
            with lock.read():
                inside.wait()  # all three must be inside at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_is_exclusive(self):
        lock = RWLock()
        active = []
        torn = []

        def writer() -> None:
            with lock.write():
                active.append("w")
                if len(active) > 1:
                    torn.append(tuple(active))
                time.sleep(0.002)
                active.remove("w")

        def reader() -> None:
            with lock.read():
                if "w" in active:
                    torn.append(tuple(active))

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert torn == []

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: once a writer queues, fresh readers wait,
        so sustained query traffic cannot starve appends."""
        lock = RWLock()
        reader_entered = threading.Event()
        release_reader = threading.Event()
        writer_done = threading.Event()
        late_reader_ran = threading.Event()
        order: list[str] = []

        def long_reader() -> None:
            with lock.read():
                reader_entered.set()
                release_reader.wait(timeout=10)

        def writer() -> None:
            with lock.write():
                order.append("writer")
            writer_done.set()

        def late_reader() -> None:
            with lock.read():
                order.append("late_reader")
            late_reader_ran.set()

        first = threading.Thread(target=long_reader)
        first.start()
        reader_entered.wait(timeout=10)
        blocked_writer = threading.Thread(target=writer)
        blocked_writer.start()
        time.sleep(0.05)  # let the writer reach its wait
        late = threading.Thread(target=late_reader)
        late.start()
        time.sleep(0.05)
        assert not late_reader_ran.is_set()  # queued behind the writer
        release_reader.set()
        for thread in (first, blocked_writer, late):
            thread.join(timeout=10)
        assert order == ["writer", "late_reader"]


class TestAppendQueryHammer:
    """The satellite gate: every response observed during a concurrent
    append is bit-identical to the pre-append or the post-append
    answer, keyed by its stamped version -- torn states would produce a
    version-2 body that matches neither."""

    def test_no_torn_reads_under_concurrent_append(self, small_base, kind):
        service = GeoService()
        service.register("small", build_dataset(small_base, kind))
        rows = make_rows()
        pre = answer(service.run_dict(wire_query()))
        assert pre["version"] == 1
        with GeoHTTPServer(service, port=0, edge=EdgeCache(ttl=600.0)) as server:
            replies = []
            errors = []

            def reader() -> None:
                try:
                    with GeoClient.for_server(server) as client:
                        for _ in range(25):
                            replies.append(client.query(wire_query()))
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.03)  # let readers overlap the write
            with GeoClient.for_server(server) as writer:
                appended = writer.append(rows, dataset="small")
            for thread in threads:
                thread.join(timeout=30)
            assert errors == []
            assert appended.status == 200
            assert appended.body["version"] == 2
        post = answer(service.run_dict(wire_query()))
        assert post["version"] == 2
        assert len(replies) == 100
        for reply in replies:
            assert reply.status == 200
            got = answer(reply.body)
            assert got == (pre if reply.body["version"] == 1 else post)

    def test_versions_monotone_per_reader(self, small_base):
        service = GeoService()
        service.register("small", build_dataset(small_base, "geoblock"))
        with GeoHTTPServer(service, port=0, edge=EdgeCache(ttl=600.0)) as server:
            per_reader: list[list[int]] = [[] for _ in range(3)]

            def reader(index: int) -> None:
                with GeoClient.for_server(server) as client:
                    for _ in range(20):
                        per_reader[index].append(client.query(wire_query()).body["version"])

            threads = [threading.Thread(target=reader, args=(index,)) for index in range(3)]
            for thread in threads:
                thread.start()
            with GeoClient.for_server(server) as writer:
                for seed in (11, 12):
                    writer.append(make_rows(count=10, seed=seed), dataset="small")
            for thread in threads:
                thread.join(timeout=30)
        for seen in per_reader:
            assert seen == sorted(seen)


class TestRegistryLock:
    def test_concurrent_register_and_lookup(self, small_base):
        """Registering datasets while other threads iterate and query
        never raises and never loses a registration."""
        service = GeoService()
        service.register("small", build_dataset(small_base, "geoblock"))
        dataset = service.dataset("small")
        errors = []
        stop = threading.Event()

        def registrar(index: int) -> None:
            try:
                for step in range(10):
                    service.register(f"extra_{index}_{step}", Dataset(dataset.handle))
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def scanner() -> None:
            try:
                while not stop.is_set():
                    for name in service.names:
                        assert name in service
                    list(service)  # iterating datasets must never tear
                    service.versions()
                    service.run_dict(wire_query())
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        writers = [threading.Thread(target=registrar, args=(index,)) for index in range(4)]
        readers = [threading.Thread(target=scanner) for _ in range(2)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=30)
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert errors == []
        assert len(service) == 1 + 4 * 10


class TestLoadgen:
    def test_percentile_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(BenchError):
            percentile([], 50)
        with pytest.raises(BenchError):
            percentile([1.0], 101)

    def test_load_result_summary(self):
        replies = [
            TimedReply(0, index, latency, None)
            for index, latency in enumerate((0.010, 0.020, 0.030, 0.040))
        ]
        result = LoadResult(elapsed_s=2.0, clients=1, replies=replies)
        assert result.qps == pytest.approx(2.0)
        assert result.summary()["p50_ms"] == pytest.approx(20.0)
        assert result.summary()["p99_ms"] == pytest.approx(40.0)

    def test_run_load_rejects_empty_plans(self, server):
        with pytest.raises(BenchError):
            run_load(server, [])
        with pytest.raises(BenchError):
            run_load(server, [[wire_query()], []])

    def test_run_load_round_trips_replies(self, server, service):
        plans = [[wire_query(), wire_query()] for _ in range(3)]
        result = run_load(server, plans)
        assert result.clients == 3
        assert len(result.replies) == 6
        want = answer(service.run_dict(wire_query()))
        for timed in result.replies:
            assert timed.reply.status == 200
            assert answer(timed.reply.body) == want
        assert result.qps > 0
