"""Materialized views over the wire: the /materialize and /views
routes, management ops through /query, the /stats mv block, and the
warm-restart path (a reopened server serves from the persisted MVs)."""

from __future__ import annotations

from repro.api import GeoService
from repro.materialize import sidecar_path

from tests.server.conftest import AGGS, REGION, answer, build_dataset, make_rows, wire_query


def materialize_body(name=None, **extra) -> dict:
    body = {
        "dataset": "small",
        "region": dict(REGION),
        "aggregates": list(AGGS),
    }
    if name is not None:
        body["name"] = name
    body.update(extra)
    return body


class TestMaterializeRoute:
    def test_post_materialize_then_queries_serve_from_it(self, client, service):
        reply = client.request("POST", "/materialize", materialize_body(name="hot"))
        assert reply.status == 200
        assert reply.ok
        assert reply.x_cache == "bypass"
        assert reply.body["data"]["name"] == "hot"
        assert reply.body["data"]["pinned"] is True
        served = client.query(wire_query())
        assert served.body["stats"]["mv"]["cached"] == 1
        assert answer(served.body) == answer(service.run_dict(wire_query()))

    def test_duplicate_is_409(self, client):
        assert client.request("POST", "/materialize", materialize_body(name="hot")).ok
        reply = client.request("POST", "/materialize", materialize_body(name="hot"))
        assert reply.status == 409
        assert reply.body["error"]["code"] == "duplicate_view"

    def test_body_cannot_override_op(self, client):
        reply = client.request(
            "POST", "/materialize", materialize_body(op="query")
        )
        assert reply.status == 400
        assert reply.body["error"]["code"] == "bad_request"

    def test_drop_view_through_unified_query_route(self, client, edge):
        client.request("POST", "/materialize", materialize_body(name="hot"))
        reply = client.query({"v": 2, "op": "drop_view", "dataset": "small", "name": "hot"})
        assert reply.status == 200
        assert reply.body["data"]["dropped"] == "hot"
        assert reply.x_cache == "bypass"
        assert len(edge) == 0  # management ops never enter the edge
        missing = client.query(
            {"v": 2, "op": "drop_view", "dataset": "small", "name": "hot"}
        )
        assert missing.status == 404
        assert missing.body["error"]["code"] == "unknown_view"


class TestViewsRoute:
    def test_get_views_lists_the_view(self, client):
        client.request("POST", "/materialize", materialize_body(name="hot"))
        reply = client.request("GET", "/views?dataset=small")
        assert reply.status == 200
        assert reply.ok
        data = reply.body["data"]
        assert data["dataset"] == "small"
        assert [view["name"] for view in data["materialized"]] == ["hot"]
        assert data["materialized"][0]["pinned"] is True

    def test_sole_dataset_needs_no_param(self, client):
        reply = client.request("GET", "/views")
        assert reply.status == 200
        assert reply.body["data"]["dataset"] == "small"
        assert reply.body["data"]["materialized"] == []

    def test_unknown_dataset_is_404(self, client):
        reply = client.request("GET", "/views?dataset=nope")
        assert reply.status == 404
        assert reply.body["error"]["code"] == "unknown_dataset"

    def test_stats_has_mv_block(self, client):
        client.request("POST", "/materialize", materialize_body(name="hot"))
        client.query(wire_query())
        stats = client.stats().body
        assert stats["mv"]["views"] == 1
        assert stats["mv"]["pinned"] == 1
        assert stats["mv"]["hits"] == 1
        assert stats["datasets"]["small"]["materialized"] == 1


class TestWarmRestart:
    def test_reopened_server_serves_from_persisted_views(self, small_base, tmp_path):
        """Save a dataset with a pinned MV, open it in a brand-new
        service behind a brand-new server: the first query is already
        an MV hit and the body matches the original server's answer."""
        path = tmp_path / "small.npz"
        first = GeoService()
        first.register("small", build_dataset(small_base, "geoblock"))
        assert first.run_dict({"v": 2, "op": "materialize", **materialize_body(name="hot")})["ok"]
        want = answer(first.run_dict(wire_query()))
        first.dataset("small").save(path)
        assert sidecar_path(path).exists()

        from repro.server import GeoClient, GeoHTTPServer

        warm = GeoService()
        warm.open("small", path)
        with GeoHTTPServer(warm, port=0) as server:
            with GeoClient.for_server(server) as client:
                reply = client.query(wire_query())
                assert reply.status == 200
                assert reply.body["stats"]["mv"]["cached"] == 1
                assert answer(reply.body) == want
                views = client.request("GET", "/views").body["data"]
                assert [view["name"] for view in views["materialized"]] == ["hot"]

    def test_refresh_continues_across_restart(self, small_base, tmp_path):
        """Append after the warm restart: the restored MV refreshes and
        answers identically to a cold in-process service."""
        path = tmp_path / "small.npz"
        first = GeoService()
        first.register("small", build_dataset(small_base, "geoblock"))
        assert first.run_dict({"v": 2, "op": "materialize", **materialize_body(name="hot")})["ok"]
        first.dataset("small").save(path)

        from repro.server import GeoClient, GeoHTTPServer

        warm = GeoService()
        warm.open("small", path)
        with GeoHTTPServer(warm, port=0) as server:
            with GeoClient.for_server(server) as client:
                rows = make_rows()
                assert client.append(rows, dataset="small").status == 200
                reply = client.query(wire_query())
                assert reply.body["stats"]["mv"]["cached"] == 1

        cold = GeoService()
        cold.open("cold", path)
        cold.dataset("cold").drop_view("hot")
        cold.dataset("cold").append(rows)
        truth = cold.run_dict(wire_query(dataset="cold"))
        assert reply.body["data"] == truth["data"]
