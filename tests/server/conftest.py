"""Shared fixtures of the HTTP serving-tier tests: datasets of every
block kind behind a live ephemeral-port server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset, GeoService
from repro.core.policy import CachePolicy
from repro.server import EdgeCache, GeoClient, GeoHTTPServer

LEVEL = 14

#: The wire shapes every round-trip test reuses.
REGION = {"bbox": [-74.05, 40.65, -73.82, 40.82]}
AGGS = ["count", "sum:fare", "avg:distance"]


def wire_query(dataset: str = "small", region: dict | None = None) -> dict:
    return {
        "v": 2,
        "dataset": dataset,
        "region": dict(region or REGION),
        "aggregates": list(AGGS),
    }


def make_rows(count: int = 40, seed: int = 5) -> list[dict]:
    rng = np.random.default_rng(seed)
    return [
        {
            "x": float(x),
            "y": float(y),
            "fare": float(fare),
            "distance": float(distance),
        }
        for x, y, fare, distance in zip(
            rng.normal(-73.95, 0.04, count),
            rng.normal(40.74, 0.04, count),
            rng.gamma(3.0, 4.0, count),
            rng.gamma(2.0, 2.0, count),
        )
    ]


def build_dataset(base, kind: str, **kwargs) -> Dataset:  # noqa: ANN001 - BaseData
    if kind == "adaptive":
        kwargs.setdefault("policy", CachePolicy(threshold=0.5))
    elif kind == "sharded":
        kwargs.setdefault("shard_level", 11)
    return Dataset.build(base, LEVEL, kind, name="small", **kwargs)


def answer(envelope: dict) -> dict:
    """The deterministic part of a wire envelope (drop the
    run-dependent ``stats`` block)."""
    return {key: value for key, value in envelope.items() if key != "stats"}


@pytest.fixture(params=["geoblock", "sharded", "adaptive"])
def kind(request) -> str:
    return request.param


@pytest.fixture()
def service(small_base) -> GeoService:
    built = GeoService()
    built.register("small", build_dataset(small_base, "geoblock"))
    return built


@pytest.fixture()
def edge() -> EdgeCache:
    # TTLs far beyond a test run: only explicit clock control or a
    # version bump can move an entry out of the fresh state.
    return EdgeCache(ttl=600.0, stale_ttl=600.0)


@pytest.fixture()
def server(service, edge):
    with GeoHTTPServer(service, port=0, edge=edge) as running:
        yield running


@pytest.fixture()
def client(server):
    with GeoClient.for_server(server) as connected:
        yield connected
