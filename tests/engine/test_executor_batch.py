"""Batched execution: run_batch must equal sequential vector queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveGeoBlock, AggSpec, CachePolicy, GeoBlock
from repro.workloads.workload import Query, base_workload

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
    AggSpec("avg", "fare"),
]

LEVEL = 14


def assert_results_identical(sequential, batched):
    assert len(sequential) == len(batched)
    for want, got in zip(sequential, batched):
        assert got.count == want.count
        assert got.cells_probed == want.cells_probed
        assert got.cache_hits == want.cache_hits
        for key, value in want.values.items():
            if np.isnan(value):
                assert np.isnan(got.values[key])
            else:
                # Bit-identical: the batch fold follows the same order.
                assert got.values[key] == value


@pytest.fixture(scope="module")
def block(small_base) -> GeoBlock:
    return GeoBlock.build(small_base, LEVEL)


class TestPlainBlockBatch:
    def test_batch_equals_sequential(self, block, small_polygons):
        sequential = [block.select(p, AGGS) for p in small_polygons]
        batched = block.run_batch(small_polygons, aggs=AGGS)
        assert_results_identical(sequential, batched)

    def test_batch_with_repeats(self, block, small_polygons):
        """Skew shape: repeated polygons share covering and records."""
        polygons = list(small_polygons) * 5
        sequential = [block.select(p, AGGS) for p in polygons]
        batched = block.run_batch(polygons, aggs=AGGS)
        assert_results_identical(sequential, batched)

    def test_batch_accepts_query_objects(self, block, small_polygons):
        queries = [Query(region=p, aggs=tuple(AGGS)) for p in small_polygons]
        batched = block.run_batch(queries)
        sequential = [block.select(q.region, list(q.aggs)) for q in queries]
        assert_results_identical(sequential, batched)

    def test_batch_mixed_aggs(self, block, small_polygons):
        """Each query may request different output aggregates."""
        queries = [
            Query(region=p, aggs=(AGGS[i % len(AGGS)],))
            for i, p in enumerate(small_polygons)
        ]
        batched = block.run_batch(queries)
        sequential = [block.select(q.region, list(q.aggs)) for q in queries]
        assert_results_identical(sequential, batched)

    def test_empty_batch(self, block):
        assert block.run_batch([]) == []

    def test_batch_honours_scalar_mode(self, small_base, small_polygons):
        """The experiment harness's scalar model must carry through the
        batched path: results identical to sequential scalar selects."""
        block = GeoBlock.build(small_base, LEVEL)
        block.query_mode = "scalar"
        sequential = [block.select(p, AGGS) for p in small_polygons]
        batched = block.run_batch(small_polygons, aggs=AGGS)
        assert_results_identical(sequential, batched)

    def test_default_aggs_are_count(self, block, quad_polygon):
        batched = block.run_batch([quad_polygon])
        assert batched[0].count == block.select(quad_polygon).count

    def test_explicit_empty_aggs_not_replaced_by_default(self, block, quad_polygon):
        """Query(aggs=()) asks for count only, no output values; the
        batch path must not substitute the shared/default aggregates."""
        query = Query(region=quad_polygon, aggs=())
        sequential = block.select(quad_polygon, [])
        batched = block.run_batch([query], aggs=AGGS)
        assert batched[0].values == {} == sequential.values
        assert batched[0].count == sequential.count


class TestAdaptiveBatch:
    @pytest.fixture()
    def adaptive(self, small_base) -> AdaptiveGeoBlock:
        return AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=0.5))

    def test_cold_batch_equals_sequential(self, adaptive, small_polygons):
        batched = adaptive.run_batch(small_polygons, aggs=AGGS)
        # A fresh twin for the sequential reference (statistics differ).
        twin = AdaptiveGeoBlock(adaptive.block, CachePolicy(threshold=0.5))
        sequential = [twin.select(p, AGGS) for p in small_polygons]
        assert_results_identical(sequential, batched)

    def test_warm_batch_hits_cache(self, adaptive, small_polygons):
        for polygon in small_polygons:
            adaptive.select(polygon, AGGS)
        adaptive.adapt()
        sequential = [adaptive.select(p, AGGS) for p in small_polygons]
        batched = adaptive.run_batch(small_polygons, aggs=AGGS)
        assert_results_identical(sequential, batched)
        assert sum(result.cache_hits for result in batched) > 0

    def test_batch_records_statistics(self, adaptive, small_polygons):
        before = adaptive.statistics.queries_recorded
        adaptive.run_batch(small_polygons, aggs=AGGS)
        assert adaptive.statistics.queries_recorded == before + len(small_polygons)

    def test_batch_respects_rebuild_cadence(self, small_base, small_polygons):
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL),
            CachePolicy(threshold=0.5, rebuild_every=3),
        )
        assert adaptive.trie is None
        adaptive.run_batch(small_polygons[:4], aggs=AGGS)
        assert adaptive.trie is not None


class TestWorkloadHelpers:
    def test_chunked_covers_all_queries(self, small_polygons):
        workload = base_workload(small_polygons, AGGS)
        chunks = list(workload.chunked(5))
        assert sum(len(c) for c in chunks) == len(workload)
        assert all(len(c) <= 5 for c in chunks)
        flattened = [q for chunk in chunks for q in chunk]
        assert flattened == list(workload)

    def test_chunked_rejects_bad_size(self, small_polygons):
        from repro.errors import QueryError

        workload = base_workload(small_polygons, AGGS)
        with pytest.raises(QueryError):
            list(workload.chunked(0))

    def test_distinct_regions(self, small_polygons):
        workload = base_workload(small_polygons, AGGS).repeated(3)
        assert workload.distinct_regions() == list(small_polygons)

    def test_run_workload_batched_matches_sequential(self, block, small_polygons):
        from repro.experiments.common import run_workload, run_workload_batched

        workload = base_workload(small_polygons, AGGS).repeated(2)
        _, sequential = run_workload(block, workload)
        _, whole = run_workload_batched(block, workload)
        _, chunked = run_workload_batched(block, workload, batch_size=7)
        assert_results_identical(sequential, whole)
        assert_results_identical(sequential, chunked)
