"""The "kernel" execution model: bit-identical to the vector oracle.

The kernel model is a pure execution strategy -- columnar numpy
reductions instead of per-cell Python folds -- so every answer it
produces must match the vector model bit for bit: counts, sums (same
float fold order), mins/maxs, NaN placement, and the probe/hit
counters.  These tests gate that contract across all three block kinds
(plain, sharded, adaptive-with-trie), the empty edges, and the API
surface, plus unit-level checks of the kernel primitives themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset
from repro.core import AdaptiveGeoBlock, AggSpec, CachePolicy, GeoBlock
from repro.engine import kernels
from repro.engine.executor import EXECUTION_MODES, resolve_mode
from repro.engine.shards import MIN_RANGES_FOR_FANOUT, ShardedGeoBlock
from repro.errors import QueryError
from repro.geometry import Polygon
from repro.workloads.workload import Query

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
    AggSpec("avg", "fare"),
]

LEVEL = 14


def assert_results_identical(want_list, got_list):
    assert len(want_list) == len(got_list)
    for want, got in zip(want_list, got_list):
        assert got.count == want.count
        assert got.cells_probed == want.cells_probed
        assert got.cache_hits == want.cache_hits
        assert set(got.values) == set(want.values)
        for key, value in want.values.items():
            if np.isnan(value):
                assert np.isnan(got.values[key])
            else:
                # Bit-identical, not approximately equal.
                assert got.values[key] == value


@pytest.fixture(scope="module")
def block(small_base) -> GeoBlock:
    return GeoBlock.build(small_base, LEVEL)


class TestModePlumbing:
    def test_kernel_is_the_production_default(self, block):
        assert block.query_mode == "kernel"
        assert EXECUTION_MODES[0] == "kernel"

    def test_unknown_mode_rejected(self, block, quad_polygon):
        with pytest.raises(QueryError):
            block.select(quad_polygon, AGGS, mode="simd")
        with pytest.raises(QueryError):
            resolve_mode(None, "turbo")

    def test_adaptive_shares_mode_with_wrapped_block(self, small_base):
        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL))
        assert adaptive.query_mode == "kernel"


class TestPlainBlockParity:
    def test_select_matches_vector(self, block, small_polygons):
        vector = [block.select(p, AGGS, mode="vector") for p in small_polygons]
        kernel = [block.select(p, AGGS, mode="kernel") for p in small_polygons]
        assert_results_identical(vector, kernel)

    def test_batch_matches_vector_batch(self, block, small_polygons):
        polygons = list(small_polygons) * 4  # repeats exercise the dedup path
        vector = block.run_batch(polygons, aggs=AGGS, mode="vector")
        kernel = block.run_batch(polygons, aggs=AGGS, mode="kernel")
        assert_results_identical(vector, kernel)

    def test_batch_matches_sequential_kernel(self, block, small_polygons):
        sequential = [block.select(p, AGGS, mode="kernel") for p in small_polygons]
        batched = block.run_batch(small_polygons, aggs=AGGS, mode="kernel")
        assert_results_identical(sequential, batched)

    def test_mixed_aggs_batch(self, block, small_polygons):
        queries = [
            Query(region=p, aggs=(AGGS[i % len(AGGS)],))
            for i, p in enumerate(small_polygons)
        ]
        vector = block.run_batch(queries, mode="vector")
        kernel = block.run_batch(queries, mode="kernel")
        assert_results_identical(vector, kernel)

    def test_scalar_model_agrees_where_order_free(self, block, small_polygons):
        """Scalar differs from kernel only in float-sum fold order:
        counts, mins and maxs are order-independent and must agree
        exactly; sums to rounding."""
        for polygon in small_polygons:
            scalar = block.select(polygon, AGGS, mode="scalar")
            kernel = block.select(polygon, AGGS, mode="kernel")
            assert kernel.count == scalar.count
            if kernel.count == 0:
                assert np.isnan(kernel.values["min(fare)"])
                assert np.isnan(scalar.values["min(fare)"])
                continue
            assert kernel.values["min(fare)"] == scalar.values["min(fare)"]
            assert kernel.values["max(distance)"] == scalar.values["max(distance)"]
            assert kernel.values["sum(fare)"] == pytest.approx(
                scalar.values["sum(fare)"], rel=1e-9
            )

    def test_empty_covering(self, block):
        nowhere = Polygon([(10.0, 10.0), (10.001, 10.0), (10.001, 10.001)])
        vector = block.select(nowhere, AGGS, mode="vector")
        kernel = block.select(nowhere, AGGS, mode="kernel")
        assert_results_identical([vector], [kernel])
        assert kernel.count == 0

    def test_empty_aggs_count_only(self, block, quad_polygon):
        vector = block.select(quad_polygon, (), mode="vector")
        kernel = block.select(quad_polygon, (), mode="kernel")
        assert kernel.values == {} == vector.values
        assert kernel.count == vector.count
        batched = block.run_batch([Query(region=quad_polygon, aggs=())], mode="kernel")
        assert batched[0].values == {}
        assert batched[0].count == vector.count

    def test_empty_batch(self, block):
        assert block.run_batch([], mode="kernel") == []

    def test_grouped_matches_vector(self, block, small_polygons):
        kernel_rows, kernel_rollup = block.run_grouped(
            small_polygons, aggs=AGGS, mode="kernel"
        )
        vector_rows, vector_rollup = block.run_grouped(
            small_polygons, aggs=AGGS, mode="vector"
        )
        assert_results_identical(vector_rows, kernel_rows)
        assert_results_identical([vector_rollup], [kernel_rollup])

    def test_count_matches_brute_force(self, block, small_polygons):
        """Satellite: the vectorised COUNT kernel must reproduce the
        old per-cell Python loop exactly (pure integer arithmetic)."""
        executor = block.executor
        for polygon in small_polygons:
            plan = block.plan(polygon)
            lo, hi = executor.ranges(plan.union)
            offsets = executor.aggregates.offsets
            counts = executor.aggregates.counts
            want = 0
            for first, last in zip(lo.tolist(), hi.tolist()):
                if last > first:
                    want += int(offsets[last - 1] + counts[last - 1] - offsets[first])
            assert executor.count(plan) == want
            assert block.count(polygon) == want


class TestShardedParity:
    @pytest.fixture(scope="class")
    def sharded(self, small_base) -> ShardedGeoBlock:
        return ShardedGeoBlock.build(small_base, LEVEL)

    def test_select_matches_plain_vector(self, block, sharded, small_polygons):
        vector = [block.select(p, AGGS, mode="vector") for p in small_polygons]
        kernel = [sharded.select(p, AGGS, mode="kernel") for p in small_polygons]
        assert_results_identical(vector, kernel)

    def test_batch_fans_out_and_matches(self, block, sharded, small_polygons):
        """A batch large enough to clear the fan-out threshold must hit
        the per-shard segment-partials path and stay bit-identical to
        the plain vector fold (boundary-spanning cells included)."""
        polygons = list(small_polygons) * 6
        total_cells = sum(len(sharded.plan(p).union) for p in small_polygons) * 6
        assert total_cells >= MIN_RANGES_FOR_FANOUT
        assert sharded.num_shards > 1
        vector = block.run_batch(polygons, aggs=AGGS, mode="vector")
        kernel = sharded.run_batch(polygons, aggs=AGGS, mode="kernel")
        assert_results_identical(vector, kernel)

    def test_fanout_below_threshold_inlines(self, block, sharded, quad_polygon):
        vector = block.select(quad_polygon, AGGS, mode="vector")
        kernel = sharded.select(quad_polygon, AGGS, mode="kernel")
        assert_results_identical([vector], [kernel])


class TestAdaptiveParity:
    @pytest.fixture()
    def trained(self, small_base, small_polygons) -> AdaptiveGeoBlock:
        """An adaptive block with a populated trie, so kernel folds see
        the full Figure-8 mix of hit / partial / miss probes."""
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=0.5)
        )
        for polygon in small_polygons:
            adaptive.select(polygon, AGGS)
        adaptive.adapt()
        return adaptive

    def test_select_matches_vector_with_trie_hits(self, trained, small_polygons):
        vector = [trained.select(p, AGGS, mode="vector") for p in small_polygons]
        kernel = [trained.select(p, AGGS, mode="kernel") for p in small_polygons]
        assert_results_identical(vector, kernel)
        assert sum(result.cache_hits for result in kernel) > 0

    def test_batch_matches_vector_with_trie_hits(self, trained, small_polygons):
        queries = [Query(region=p, aggs=tuple(AGGS)) for p in small_polygons] * 3
        vector = trained.run_batch(queries, mode="vector")
        kernel = trained.run_batch(queries, mode="kernel")
        assert_results_identical(vector, kernel)
        assert sum(result.cache_hits for result in kernel) > 0

    def test_cold_trie_matches_plain(self, small_base, block, small_polygons):
        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL))
        kernel = [adaptive.select(p, AGGS, mode="kernel") for p in small_polygons]
        vector = [block.select(p, AGGS, mode="vector") for p in small_polygons]
        assert_results_identical(vector, kernel)


class TestApiSurface:
    def test_fluent_mode_kernel(self, block, quad_polygon):
        dataset = Dataset(GeoBlock(block.space, block.level, block.aggregates))
        kernel = dataset.over(quad_polygon).agg("count", "sum:fare").mode("kernel").run()
        vector = dataset.over(quad_polygon).agg("count", "sum:fare").mode("vector").run()
        assert kernel.count == vector.count
        assert kernel.values == vector.values

    def test_cached_view_execution(self, small_base, quad_polygon):
        """Filtered-view execution under the kernel model: the view's
        block answers in kernel mode and the result tier round-trips."""
        from repro.storage.expr import col

        dataset = Dataset(GeoBlock.build(small_base, LEVEL), base=small_base)
        builder = dataset.where(col("fare") > 20.0).over(quad_polygon).agg(
            "count", "sum:fare"
        )
        first = builder.run()
        again = builder.run()
        assert first.stats.result_cached == 0
        assert again.stats.result_cached == 1
        assert again.count == first.count
        assert again.values == first.values
        vector = (
            dataset.where(col("fare") > 20.0)
            .over(quad_polygon)
            .agg("count", "sum:fare")
            .mode("vector")
            .run()
        )
        assert first.count == vector.count
        assert first.values == vector.values

    def test_wire_mode_hint(self, small_base, quad_polygon):
        from repro.api.geojson import region_to_geojson

        dataset = Dataset(GeoBlock.build(small_base, LEVEL), name="points")
        payload = {
            "v": 2,
            "dataset": "points",
            "region": region_to_geojson(quad_polygon),
            "aggregates": ["count", "sum:fare"],
            "hints": {"mode": "kernel"},
        }
        envelope = dataset.query_dict(payload)
        assert envelope["ok"] is True
        vector = dict(payload)
        vector["hints"] = {"mode": "vector"}
        assert dataset.query_dict(vector)["data"]["values"] == envelope["data"]["values"]


class TestKernelPrimitives:
    def test_segment_partials_match_add_slice(self, block):
        """Stage 1 must equal float(column[lo:hi].sum()) / .min() /
        .max() per segment, bit for bit, across segment lengths."""
        aggregates = block.aggregates
        n = len(aggregates)
        rng = np.random.default_rng(5)
        lo = rng.integers(0, n, 200).astype(np.int64)
        length = rng.integers(0, 40, 200).astype(np.int64)
        hi = np.minimum(lo + length, n)
        partials = kernels.segment_partials(aggregates, lo, hi, ["fare", "distance"])
        for i in range(lo.size):
            a, b = int(lo[i]), int(hi[i])
            if b <= a:
                assert partials.counts[i] == 0.0
                assert partials.mins["fare"][i] == np.inf
                continue
            assert partials.counts[i] == float(aggregates.counts[a:b].sum())
            for name in ("fare", "distance"):
                assert partials.sums[name][i] == float(aggregates.sums[name][a:b].sum())
                assert partials.mins[name][i] == float(aggregates.mins[name][a:b].min())
                assert partials.maxs[name][i] == float(aggregates.maxs[name][a:b].max())

    def test_sequential_ranged_sums_match_python_fold(self):
        """Stage 2 must reproduce the accumulator's sequential += fold
        from 0.0, including ranges long enough for the heavy-query
        fallback path."""
        rng = np.random.default_rng(11)
        values = rng.normal(0.0, 123.456, 4000)
        lengths = [0, 1, 2, 3, 17, 100, 600, 1500]  # 600+ exceed HEAVY_QUERY_ROWS
        starts = np.cumsum([0] + lengths[: len(lengths)])
        values = values[: starts[-1]]
        (totals,) = kernels.sequential_ranged_sums([values], np.asarray(starts))
        for q in range(len(lengths)):
            fold = 0.0
            for x in values[starts[q] : starts[q + 1]]:
                fold += float(x)
            assert totals[q] == fold

    def test_ranged_reduce_min_max_and_identity(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=500)
        lo = np.asarray([0, 10, 250, 499, 500, 37], dtype=np.int64)
        hi = np.asarray([10, 10, 500, 500, 500, 38], dtype=np.int64)
        mins = kernels.ranged_reduce(np.minimum, values, lo, hi, np.inf)
        maxs = kernels.ranged_reduce(np.maximum, values, lo, hi, -np.inf)
        for i in range(lo.size):
            if hi[i] <= lo[i]:
                assert mins[i] == np.inf
                assert maxs[i] == -np.inf
            else:
                assert mins[i] == values[lo[i] : hi[i]].min()
                assert maxs[i] == values[lo[i] : hi[i]].max()

    def test_count_segments(self, block, small_polygons):
        executor = block.executor
        plan = block.plan(small_polygons[0])
        lo, hi = executor.ranges(plan.union)
        aggregates = executor.aggregates
        want = sum(
            int(aggregates.counts[a:b].sum()) for a, b in zip(lo.tolist(), hi.tolist())
        )
        assert kernels.count_segments(aggregates.offsets, aggregates.counts, lo, hi) == want
