"""Sharded GeoBlocks: partition invariants, query equivalence, updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import cellid
from repro.core import AggSpec, GeoBlock
from repro.core.updates import apply_update
from repro.engine.shards import ShardedGeoBlock
from repro.geometry import Polygon

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
]

LEVEL = 14


@pytest.fixture(scope="module")
def sharded(small_base) -> ShardedGeoBlock:
    return ShardedGeoBlock.build(small_base, LEVEL)


@pytest.fixture(scope="module")
def prefix_sharded(small_base) -> ShardedGeoBlock:
    return ShardedGeoBlock.build(small_base, LEVEL, shard_level=11)


@pytest.fixture(scope="module")
def plain(small_base) -> GeoBlock:
    return GeoBlock.build(small_base, LEVEL)


def assert_close(want, got):
    assert got.count == want.count
    assert got.cells_probed == want.cells_probed
    for key, value in want.values.items():
        if np.isnan(value):
            assert np.isnan(got.values[key])
        else:
            assert got.values[key] == pytest.approx(value, rel=1e-12)


class TestPartition:
    def test_shards_partition_rows(self, sharded):
        bounds = [(shard.lo, shard.hi) for shard in sharded.shards]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == sharded.num_cells
        for (_, prev_hi), (next_lo, _) in zip(bounds, bounds[1:]):
            assert next_lo == prev_hi

    def test_prefixes_match_rows(self, prefix_sharded):
        keys = prefix_sharded.aggregates.keys
        for shard in prefix_sharded.shards:
            for row in (shard.lo, shard.hi - 1):
                assert (
                    cellid.parent(int(keys[row]), prefix_sharded.shard_level)
                    == shard.prefix
                )

    def test_multiple_shards_by_default(self, sharded):
        assert sharded.num_shards > 1

    def test_default_layout_is_curve(self, sharded):
        assert sharded.layout == "curve"
        assert sharded.shard_level is None
        assert sharded.splits is not None

    def test_shard_level_selects_prefix_layout(self, prefix_sharded):
        assert prefix_sharded.layout == "prefix"
        assert prefix_sharded.shard_level == 11
        assert prefix_sharded.splits is None

    def test_explicit_shard_level(self, small_base):
        fine = ShardedGeoBlock.build(small_base, LEVEL, shard_level=12)
        assert fine.shard_level == 12
        assert fine.num_shards >= 1

    def test_keys_respect_shard_key_ranges(self, sharded):
        """Every shard's rows carry leaf keys inside its key range, and
        the ranges tile the full curve-key space."""
        from repro.cells import sfc

        keys = sharded.aggregates.keys
        assert sharded.shards[0].key_lo == 0
        assert sharded.shards[-1].key_hi == sfc.KEY_SPACE
        for prev, nxt in zip(sharded.shards, sharded.shards[1:]):
            assert nxt.key_lo == prev.key_hi
        lo_pos = (keys >> 1).astype(np.int64)  # leaf start position per cell
        for shard in sharded.shards:
            segment = lo_pos[shard.lo : shard.hi]
            if segment.size:
                assert segment[0] >= shard.key_lo
                assert segment[-1] < shard.key_hi

    def test_explicit_shard_count_is_reproducible(self, small_base):
        one = ShardedGeoBlock.build(small_base, LEVEL, shard_count=8)
        two = ShardedGeoBlock.build(small_base, LEVEL, shard_count=8)
        assert one.num_shards == 8
        assert np.array_equal(one.splits, two.splits)
        rebuilt = ShardedGeoBlock.build(small_base, LEVEL, splits=one.splits)
        assert [(s.lo, s.hi) for s in rebuilt.shards] == [(s.lo, s.hi) for s in one.shards]

    def test_equi_depth_splits_balance_tuples(self, small_base):
        block = ShardedGeoBlock.build(small_base, LEVEL, shard_count=8)
        counts = block.aggregates.counts
        per_shard = [int(counts[s.lo : s.hi].sum()) for s in block.shards]
        total = sum(per_shard)
        # Equi-depth on clustered data: no shard hoards the tuples the
        # way a fixed prefix does (splits land on cell boundaries, so
        # perfect equality is not attainable).
        assert max(per_shard) < 0.5 * total

    def test_layout_argument_validation(self, small_base):
        from repro.errors import BuildError

        with pytest.raises(BuildError):
            ShardedGeoBlock.build(small_base, LEVEL, layout="nope")
        with pytest.raises(BuildError):
            ShardedGeoBlock.build(small_base, LEVEL, layout="prefix", shard_count=4)
        with pytest.raises(BuildError):
            ShardedGeoBlock.build(small_base, LEVEL, layout="curve", shard_level=11)
        with pytest.raises(BuildError):
            ShardedGeoBlock.build(small_base, LEVEL, shard_count=4, splits=[0, 1])

    def test_from_block_is_zero_copy(self, plain):
        sharded = ShardedGeoBlock.from_block(plain)
        assert sharded.aggregates is plain.aggregates
        assert sharded.num_cells == plain.num_cells

    def test_coarsened_stays_sharded(self, sharded, plain, quad_polygon):
        coarse = sharded.coarsened(11)
        assert isinstance(coarse, ShardedGeoBlock)
        assert coarse.layout == "curve"
        # Curve splits are level-independent; the coarse block routes
        # along the same boundaries as its parent.
        assert np.array_equal(coarse.splits, sharded.splits)
        assert coarse.count(quad_polygon) == plain.coarsened(11).count(quad_polygon)

    def test_coarsened_prefix_stays_prefix(self, prefix_sharded, plain, quad_polygon):
        coarse = prefix_sharded.coarsened(11)
        assert isinstance(coarse, ShardedGeoBlock)
        assert coarse.layout == "prefix"
        assert coarse.shard_level <= 11
        assert coarse.count(quad_polygon) == plain.coarsened(11).count(quad_polygon)


class TestQueryEquivalence:
    def test_select_matches_plain(self, sharded, plain, small_polygons):
        for polygon in small_polygons:
            assert_close(plain.select(polygon, AGGS), sharded.select(polygon, AGGS))

    def test_count_matches_plain(self, sharded, plain, small_polygons):
        for polygon in small_polygons:
            assert plain.count(polygon) == sharded.count(polygon)

    def test_batch_matches_sequential(self, sharded, small_polygons):
        polygons = list(small_polygons) * 6  # force the fan-out path
        sequential = [sharded.select(p, AGGS) for p in polygons]
        batched = sharded.run_batch(polygons, aggs=AGGS)
        for want, got in zip(sequential, batched):
            assert_close(want, got)
            assert got.count == want.count  # counts are exact under sharding

    def test_cross_boundary_sums_bit_identical_to_plain(self, small_base, small_polygons):
        """Pin the PR-1 drift fix: batched sharded sums are *bit*
        identical to the plain block, including covering cells coarser
        than the shard level (ranges spanning shard boundaries, which
        used to be merged from rounded per-shard partials)."""
        from repro.cells import cellid

        level, shard_level = 16, 14
        plain = GeoBlock.build(small_base, level)
        sharded = ShardedGeoBlock.build(small_base, level, shard_level=shard_level)
        polygons = list(small_polygons) * 4  # >= MIN_RANGES_FOR_FANOUT cells
        spanning_capable = sum(
            1
            for polygon in small_polygons
            for cell in plain.covering(polygon).ids.tolist()
            if cellid.level_of(cell) < shard_level
        )
        assert spanning_capable > 0, "workload must exercise boundary-spanning ranges"
        for want, got in zip(
            plain.run_batch(polygons, aggs=AGGS), sharded.run_batch(polygons, aggs=AGGS)
        ):
            assert got.count == want.count
            for key, value in want.values.items():
                if np.isnan(value):
                    assert np.isnan(got.values[key])
                else:
                    assert got.values[key] == value  # exact, not approx

    def test_close_releases_and_recreates_pool(self, small_base, small_polygons):
        with ShardedGeoBlock.build(small_base, LEVEL, shard_level=12) as block:
            polygons = list(small_polygons) * 4
            first = block.run_batch(polygons, aggs=AGGS)
            block.close()  # explicit close mid-life: pool is re-created lazily
            again = block.run_batch(polygons, aggs=AGGS)
            for want, got in zip(first, again):
                assert_close(want, got)
        assert block._pool is None  # context exit shut the pool down

    def test_single_worker_equals_pool(self, small_base, small_polygons):
        solo = ShardedGeoBlock.build(small_base, LEVEL, max_workers=1)
        pooled = ShardedGeoBlock.build(small_base, LEVEL, max_workers=4)
        polygons = list(small_polygons) * 4
        for want, got in zip(
            solo.run_batch(polygons, aggs=AGGS), pooled.run_batch(polygons, aggs=AGGS)
        ):
            assert_close(want, got)


class TestUpdates:
    def _fresh(self, level: int = 13) -> ShardedGeoBlock:
        from repro.cells import EARTH
        from repro.storage import PointTable, Schema, extract

        rng = np.random.default_rng(55)
        count = 8000
        table = PointTable(
            Schema(["fare", "distance"]),
            rng.normal(-73.95, 0.04, count),
            rng.normal(40.75, 0.03, count),
            {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
        )
        return ShardedGeoBlock.build(extract(table, EARTH), level)

    def test_in_place_update_marks_one_shard_dirty(self, quad_polygon):
        block = self._fresh()
        xs = -73.95, 40.75
        before = block.num_cells
        in_place = apply_update(block, xs[0], xs[1], {"fare": 9.0, "distance": 1.0})
        assert in_place
        assert block.num_cells == before
        assert len(block.dirty_shards()) == 1
        assert block.sweep_dirty() == 1
        assert block.dirty_shards() == []

    def test_splice_update_keeps_partition_consistent(self):
        block = self._fresh()
        shards_before = block.num_shards
        in_place = apply_update(block, -73.5, 40.95, {"fare": 5.0, "distance": 2.0})
        assert not in_place
        # Partition still covers all rows contiguously.
        bounds = [(shard.lo, shard.hi) for shard in block.shards]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == block.num_cells
        for (_, prev_hi), (next_lo, _) in zip(bounds, bounds[1:]):
            assert next_lo == prev_hi
        assert block.num_shards >= shards_before
        probe = Polygon.regular(-73.5, 40.95, 0.01, 4)
        assert block.count(probe) == 1

    def test_update_stream_matches_rebuild(self):
        """After a burst of updates, queries equal a freshly built block."""
        from repro.cells import EARTH
        from repro.storage import PointTable, Schema, extract

        block = self._fresh()
        rng = np.random.default_rng(6)
        new_xs = rng.normal(-73.9, 0.08, 40)
        new_ys = rng.normal(40.76, 0.05, 40)
        fares = rng.gamma(3.0, 4.0, 40)
        distances = rng.gamma(2.0, 2.0, 40)
        for i in range(40):
            apply_update(
                block,
                float(new_xs[i]),
                float(new_ys[i]),
                {"fare": float(fares[i]), "distance": float(distances[i])},
            )
        # Rebuild from the combined data.
        rng2 = np.random.default_rng(55)
        count = 8000
        xs = np.concatenate([rng2.normal(-73.95, 0.04, count), new_xs])
        ys = np.concatenate([rng2.normal(40.75, 0.03, count), new_ys])
        table = PointTable(
            Schema(["fare", "distance"]),
            xs,
            ys,
            {
                "fare": np.concatenate([rng2.gamma(3.0, 4.0, count), fares]),
                "distance": np.concatenate([rng2.gamma(2.0, 2.0, count), distances]),
            },
        )
        rebuilt = ShardedGeoBlock.build(extract(table, EARTH), 13)
        probe = Polygon.regular(-73.9, 40.76, 0.06, 8)
        want = rebuilt.select(probe, AGGS)
        got = block.select(probe, AGGS)
        assert got.count == want.count
        for key, value in want.values.items():
            assert got.values[key] == pytest.approx(value)

    def test_skewed_appends_match_cold_rebuild_exactly(self):
        """Appends piled into one hot corner of the domain route by curve
        key into the existing partition, and every answer stays
        bit-identical to a block built cold from the combined data."""
        from repro.cells import EARTH
        from repro.storage import PointTable, Schema, extract

        block = self._fresh()
        splits_before = None if block.splits is None else np.array(block.splits)
        rng = np.random.default_rng(17)
        burst = 60
        # Heavy skew: everything lands in a ~200m patch.
        new_xs = rng.normal(-73.952, 0.001, burst)
        new_ys = rng.normal(40.751, 0.001, burst)
        fares = rng.gamma(3.0, 4.0, burst)
        distances = rng.gamma(2.0, 2.0, burst)
        for i in range(burst):
            apply_update(
                block,
                float(new_xs[i]),
                float(new_ys[i]),
                {"fare": float(fares[i]), "distance": float(distances[i])},
            )
        # The adaptive-repartition seam is a no-op: split points survive
        # the skewed burst untouched.
        assert block.maybe_repartition() is False
        if splits_before is not None:
            assert np.array_equal(np.array(block.splits), splits_before)
        rng2 = np.random.default_rng(55)
        count = 8000
        table = PointTable(
            Schema(["fare", "distance"]),
            np.concatenate([rng2.normal(-73.95, 0.04, count), new_xs]),
            np.concatenate([rng2.normal(40.75, 0.03, count), new_ys]),
            {
                "fare": np.concatenate([rng2.gamma(3.0, 4.0, count), fares]),
                "distance": np.concatenate([rng2.gamma(2.0, 2.0, count), distances]),
            },
        )
        rebuilt = ShardedGeoBlock.build(extract(table, EARTH), 13)
        probes = [
            Polygon.regular(-73.952, 40.751, 0.004, 8),  # the hot patch
            Polygon.regular(-73.95, 40.75, 0.05, 6),  # wide
            Polygon.regular(-73.9, 40.7, 0.02, 4),  # mostly empty
        ]
        for probe in probes:
            want = rebuilt.select(probe, AGGS)
            got = block.select(probe, AGGS)
            assert got.count == want.count
            # Counts are exact; sums tolerate float addition-order noise
            # between incremental accumulation and a cold extract.
            for key, value in want.values.items():
                assert got.values[key] == pytest.approx(value)
