"""PartitionRouter: pruning, conservativeness, epoch invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import EARTH, cellid, cellops, sfc
from repro.cells.union import CellUnion
from repro.core.updates import apply_update
from repro.engine.shards import ShardedGeoBlock

LEVEL = 14


@pytest.fixture(scope="module")
def curve_block(small_base) -> ShardedGeoBlock:
    return ShardedGeoBlock.build(small_base, LEVEL, shard_count=8)


@pytest.fixture(scope="module")
def prefix_block(small_base) -> ShardedGeoBlock:
    return ShardedGeoBlock.build(small_base, LEVEL, shard_level=11)


def brute_force_candidates(block, ids) -> set[int]:
    """Per-cell Python reference for the vectorised interval routing."""
    lo, hi = sfc.cell_key_spans(np.asarray(ids, dtype=np.int64))
    hits: set[int] = set()
    for m, M in zip(lo.tolist(), hi.tolist()):
        for idx, shard in enumerate(block.shards):
            if shard.key_lo < M and shard.key_hi > m:
                hits.add(idx)
    return hits


class TestRouting:
    def test_empty_union_prunes_everything(self, curve_block):
        decision = curve_block.router.route(CellUnion(np.empty(0, dtype=np.int64)))
        assert decision.candidates.size == 0
        assert decision.total == curve_block.num_shards
        assert decision.pruned == curve_block.num_shards

    def test_covering_missing_every_shard(self, prefix_block):
        """Prefix layouts leave key-space gaps between occupied prefixes;
        a covering that lands entirely in a gap routes to zero shards."""
        shards = prefix_block.shards
        gap_pos = None
        for prev, nxt in zip(shards, shards[1:]):
            if nxt.key_lo > prev.key_hi:
                gap_pos = prev.key_hi  # first leaf key of the gap
                break
        assert gap_pos is not None, "clustered data should leave prefix gaps"
        leaf = cellops.leaf_ids_from_pos(np.array([gap_pos], dtype=np.int64))
        decision = prefix_block.router.route(CellUnion(leaf))
        assert decision.candidates.size == 0
        assert decision.pruned == decision.total == prefix_block.num_shards

    def test_candidates_cover_every_matching_row(self, curve_block):
        """Conservativeness: any shard owning a covered cell's row must
        be a candidate."""
        keys = curve_block.aggregates.keys
        rng = np.random.default_rng(23)
        sample = np.sort(rng.choice(keys, size=40, replace=False))
        decision = curve_block.router.route(CellUnion(sample, assume_sorted=True))
        candidates = set(decision.candidates.tolist())
        rows = np.searchsorted(keys, sample)
        for row in rows.tolist():
            owner = next(
                idx
                for idx, s in enumerate(curve_block.shards)
                if s.lo <= row < s.hi
            )
            assert owner in candidates

    @pytest.mark.parametrize("layout", ["curve", "prefix"])
    def test_matches_brute_force(self, layout, curve_block, prefix_block):
        block = curve_block if layout == "curve" else prefix_block
        keys = block.aggregates.keys
        rng = np.random.default_rng(31)
        sample = rng.choice(keys, size=30, replace=False)
        # Mixed-level covering, as a real coverer produces: coarse
        # parents plus fine cells outside them (unions must be disjoint).
        parents = np.unique(
            np.array([cellid.parent(int(k), 10) for k in sample[:10]], dtype=np.int64)
        )
        parent_set = set(parents.tolist())
        fine = np.array(
            [
                int(k)
                for k in sample[10:]
                if cellid.parent(int(k), 10) not in parent_set
            ],
            dtype=np.int64,
        )
        union = CellUnion(np.concatenate([fine, parents]))
        decision = block.router.route(union)
        assert set(decision.candidates.tolist()) == brute_force_candidates(
            block, union.ids
        )

    def test_some_pruning_on_clustered_data(self, curve_block):
        """A tight covering over one corner of the data should not touch
        all eight shards."""
        keys = curve_block.aggregates.keys
        union = CellUnion(keys[:5].copy(), assume_sorted=True)
        decision = curve_block.router.route(union)
        assert 0 < decision.candidates.size < curve_block.num_shards
        assert decision.pruned > 0


class TestSegmentOwners:
    def test_inside_boundary_and_empty(self, curve_block):
        router = curve_block.router
        s0, s1 = curve_block.shards[0], curve_block.shards[1]
        lo = np.array([s0.lo, s0.hi - 1, s0.lo], dtype=np.int64)
        hi = np.array([s0.hi - 1, s1.lo + 1, s0.lo], dtype=np.int64)
        owners = router.segment_owners(lo, hi)
        assert owners[0] == 0  # fully inside shard 0
        assert owners[1] == -1  # spans the 0/1 boundary
        assert owners[2] == -1  # empty segment

    def test_owner_agrees_with_partition(self, curve_block):
        router = curve_block.router
        n = curve_block.num_cells
        rng = np.random.default_rng(37)
        lo = rng.integers(0, n - 1, 64, dtype=np.int64)
        hi = lo + rng.integers(1, 50, 64, dtype=np.int64)
        hi = np.minimum(hi, n)
        owners = router.segment_owners(lo, hi)
        for a, b, owner in zip(lo.tolist(), hi.tolist(), owners.tolist()):
            inside = [
                idx
                for idx, s in enumerate(curve_block.shards)
                if s.lo <= a and b <= s.hi
            ]
            if owner == -1:
                assert not inside
            else:
                assert owner in inside


class TestEpochInvalidation:
    def _fresh(self) -> ShardedGeoBlock:
        from repro.storage import PointTable, Schema, extract

        rng = np.random.default_rng(55)
        count = 4000
        table = PointTable(
            Schema(["fare"]),
            rng.normal(-73.95, 0.04, count),
            rng.normal(40.75, 0.03, count),
            {"fare": rng.gamma(3.0, 4.0, count)},
        )
        return ShardedGeoBlock.build(extract(table, EARTH), 13, shard_count=4)

    def test_in_place_update_keeps_cache(self):
        block = self._fresh()
        epoch = block.partition_epoch
        block.router.route(CellUnion(block.aggregates.keys[:3].copy()))
        apply_update(block, -73.95, 40.75, {"fare": 9.0})
        assert block.partition_epoch == epoch  # rows did not move
        assert block.router._layout()[0] == epoch

    def test_splice_bumps_epoch_and_refreshes_cache(self):
        block = self._fresh()
        epoch = block.partition_epoch
        router = block.router
        router.route(CellUnion(block.aggregates.keys[:3].copy()))
        assert router._cache[0] == epoch
        in_place = apply_update(block, -73.5, 40.95, {"fare": 5.0})
        assert not in_place
        assert block.partition_epoch > epoch
        # Next routing call rebuilds the layout for the new epoch and
        # still covers all rows.
        router.route(CellUnion(block.aggregates.keys[:3].copy()))
        assert router._cache[0] == block.partition_epoch
        starts = router._cache[3]
        assert starts[0] == 0
        assert bool((np.diff(starts) >= 0).all())
