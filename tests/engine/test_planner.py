"""Tests for the engine planner: LRU covering cache, pruning, probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import EARTH
from repro.cells.union import CellUnion
from repro.core import AdaptiveGeoBlock, CachePolicy, GeoBlock
from repro.engine.planner import CoveringCache, Planner
from repro.geometry import Polygon
from repro.storage import col

LEVEL = 14


class TestCoveringCache:
    def test_hit_and_miss_counters(self, quad_polygon):
        cache = CoveringCache(max_entries=4)
        union = CellUnion(np.asarray([4], dtype=np.int64))
        assert cache.get(quad_polygon, LEVEL) is None
        cache.put(quad_polygon, LEVEL, union)
        assert cache.get(quad_polygon, LEVEL) is union
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self, small_polygons):
        cache = CoveringCache(max_entries=2)
        union = CellUnion(np.asarray([4], dtype=np.int64))
        first, second, third = small_polygons[:3]
        cache.put(first, LEVEL, union)
        cache.put(second, LEVEL, union)
        assert cache.get(first, LEVEL) is union  # refresh first
        cache.put(third, LEVEL, union)  # evicts second (LRU)
        assert cache.get(second, LEVEL) is None
        assert cache.get(first, LEVEL) is union
        assert cache.get(third, LEVEL) is union
        assert len(cache) == 2

    def test_level_is_part_of_the_key(self, quad_polygon):
        cache = CoveringCache()
        union = CellUnion(np.asarray([4], dtype=np.int64))
        cache.put(quad_polygon, 10, union)
        assert cache.get(quad_polygon, 11) is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CoveringCache(max_entries=0)


class TestPlannerCoverings:
    def test_covering_matches_direct_coverer(self, small_block, quad_polygon):
        planner = Planner(EARTH, small_block.level)
        assert planner.covering(quad_polygon) == small_block.covering(quad_polygon)

    def test_repeated_covering_is_cached(self, quad_polygon):
        planner = Planner(EARTH, LEVEL)
        first = planner.covering(quad_polygon)
        second = planner.covering(quad_polygon)
        assert first is second
        assert planner.cache.hits == 1
        assert planner.cache.misses == 1

    def test_warm_populates_cache(self, quad_polygon):
        planner = Planner(EARTH, LEVEL)
        planner.warm(quad_polygon)
        assert planner.covering(quad_polygon) is not None
        assert planner.cache.hits == 1

    def test_level_required_for_coverings(self, quad_polygon):
        planner = Planner(EARTH)
        with pytest.raises(ValueError):
            planner.covering(quad_polygon)


class TestPlannerPlans:
    def test_plan_prunes_against_header(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, LEVEL)
        plan = block.plan(quad_polygon)
        union = block.covering(quad_polygon)
        assert len(plan.union) <= len(union)
        assert plan.probes is None

    def test_plan_for_empty_block_is_empty(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, LEVEL, col("fare") > 1e12)
        assert len(block.plan(quad_polygon).union) == 0

    def test_cell_union_targets_skip_the_cache(self, small_block, quad_polygon):
        union = small_block.covering(quad_polygon)
        hits_before = small_block.planner.cache.hits
        plan = small_block.planner.plan(union, header=small_block.header)
        assert small_block.planner.cache.hits == hits_before
        assert not plan.from_cache
        assert len(plan.union) <= len(union)

    def test_from_cache_flag(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, LEVEL)
        assert not block.plan(quad_polygon).from_cache
        assert block.plan(quad_polygon).from_cache

    def test_probes_attached_when_trie_present(self, small_base, small_polygons):
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=1.0)
        )
        for polygon in small_polygons:
            adaptive.select(polygon)
        adaptive.adapt()
        plan = adaptive.plan(small_polygons[0])
        assert plan.probes is not None
        assert len(plan.probes) == len(plan.union)
        assert any(probe.status == "hit" for probe in plan.probes)


class TestInteriorRects:
    def test_interior_rect_cached_by_identity(self, quad_polygon):
        planner = Planner(EARTH)
        first = planner.interior_rect(quad_polygon)
        assert planner.interior_rect(quad_polygon) is first
        assert planner.rect_cache.hits == 1
        assert planner.rect_cache.misses == 1

    def test_rect_inside_polygon(self):
        polygon = Polygon.regular(-73.9, 40.7, 0.05, 8)
        planner = Planner(EARTH)
        rect = planner.interior_rect(polygon)
        assert rect is not None
        for x, y in [
            (rect.min_x, rect.min_y),
            (rect.max_x, rect.max_y),
            (rect.min_x, rect.max_y),
            (rect.max_x, rect.min_y),
        ]:
            assert polygon.contains_point(x, y)
