"""Tests for the engine planner: shared covering tier, pruning, probes."""

from __future__ import annotations

import pytest

from repro.cache import TieredCache, get_cache
from repro.cells import EARTH
from repro.cells.union import CellUnion
from repro.core import AdaptiveGeoBlock, CachePolicy, GeoBlock
from repro.engine.planner import Planner
from repro.geometry import Polygon
from repro.storage import col

LEVEL = 14


class TestPlannerCoverings:
    def test_covering_matches_direct_coverer(self, small_block, quad_polygon):
        planner = Planner(EARTH, small_block.level)
        assert planner.covering(quad_polygon) == small_block.covering(quad_polygon)

    def test_repeated_covering_is_cached(self, quad_polygon):
        planner = Planner(EARTH, LEVEL)
        first = planner.covering(quad_polygon)
        second = planner.covering(quad_polygon)
        assert first is second
        assert planner.cache.coverings.hits == 1
        assert planner.cache.coverings.misses == 1

    def test_covering_shared_across_planners(self, quad_polygon):
        """The tier is process-wide: a second planner (another block,
        view, or baseline) reuses the first planner's covering."""
        first = Planner(EARTH, LEVEL).covering(quad_polygon)
        second = Planner(EARTH, LEVEL).covering(quad_polygon)
        assert second is first

    def test_covering_keyed_by_content_not_identity(self, quad_polygon):
        """A re-parsed polygon (fresh object, same vertices -- the wire
        request pattern) hits the covering computed for the original."""
        planner = Planner(EARTH, LEVEL)
        first = planner.covering(quad_polygon)
        clone = Polygon(quad_polygon.vertices())
        assert planner.covering(clone) is first
        assert planner.cache.coverings.hits == 1

    def test_level_is_part_of_the_key(self, quad_polygon):
        planner = Planner(EARTH, LEVEL)
        coarse = planner.covering(quad_polygon, level=10)
        fine = planner.covering(quad_polygon, level=LEVEL)
        assert coarse != fine
        assert planner.cache.coverings.misses == 2

    def test_private_cache_is_isolated(self, quad_polygon):
        private = TieredCache()
        planner = Planner(EARTH, LEVEL, cache=private)
        planner.covering(quad_polygon)
        assert private.coverings.misses == 1
        assert get_cache().coverings.misses == 0

    def test_warm_populates_cache(self, quad_polygon):
        planner = Planner(EARTH, LEVEL)
        planner.warm(quad_polygon)
        assert planner.covering(quad_polygon) is not None
        assert planner.cache.coverings.hits == 1

    def test_level_required_for_coverings(self, quad_polygon):
        planner = Planner(EARTH)
        with pytest.raises(ValueError):
            planner.covering(quad_polygon)


class TestPlannerPlans:
    def test_plan_prunes_against_header(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, LEVEL)
        plan = block.plan(quad_polygon)
        union = block.covering(quad_polygon)
        assert len(plan.union) <= len(union)
        assert plan.probes is None

    def test_plan_for_empty_block_is_empty(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, LEVEL, col("fare") > 1e12)
        assert len(block.plan(quad_polygon).union) == 0

    def test_cell_union_targets_skip_the_cache(self, small_block, quad_polygon):
        union = small_block.covering(quad_polygon)
        hits_before = small_block.planner.cache.coverings.hits
        plan = small_block.planner.plan(union, header=small_block.header)
        assert small_block.planner.cache.coverings.hits == hits_before
        assert not plan.from_cache
        assert len(plan.union) <= len(union)

    def test_from_cache_flag(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, LEVEL)
        assert not block.plan(quad_polygon).from_cache
        assert block.plan(quad_polygon).from_cache

    def test_probes_attached_when_trie_present(self, small_base, small_polygons):
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=1.0)
        )
        for polygon in small_polygons:
            adaptive.select(polygon)
        adaptive.adapt()
        plan = adaptive.plan(small_polygons[0])
        assert plan.probes is not None
        assert len(plan.probes) == len(plan.union)
        assert any(probe.status == "hit" for probe in plan.probes)


class TestInteriorRects:
    def test_interior_rect_cached_by_content(self, quad_polygon):
        planner = Planner(EARTH)
        first = planner.interior_rect(quad_polygon)
        assert planner.interior_rect(quad_polygon) is first
        assert planner.interior_rect(Polygon(quad_polygon.vertices())) is first
        assert planner.cache.coverings.hits == 2
        assert planner.cache.coverings.misses == 1

    def test_rect_entries_do_not_collide_with_coverings(self, quad_polygon):
        planner = Planner(EARTH, LEVEL)
        union = planner.covering(quad_polygon)
        rect = planner.interior_rect(quad_polygon)
        assert isinstance(union, CellUnion)
        assert not isinstance(rect, CellUnion)
        assert planner.covering(quad_polygon) is union
        assert planner.interior_rect(quad_polygon) is rect

    def test_rect_inside_polygon(self):
        polygon = Polygon.regular(-73.9, 40.7, 0.05, 8)
        planner = Planner(EARTH)
        rect = planner.interior_rect(polygon)
        assert rect is not None
        for x, y in [
            (rect.min_x, rect.min_y),
            (rect.max_x, rect.max_y),
            (rect.min_x, rect.max_y),
            (rect.max_x, rect.min_y),
        ]:
            assert polygon.contains_point(x, y)

    def test_rect_miss_only_once(self):
        """Repeat lookups never recompute -- ``None`` results included,
        via the sentinel default (a plain ``get(...) or compute`` would
        re-derive degenerate regions forever)."""
        sliver = Polygon([(-73.9, 40.7), (-73.8, 40.7), (-73.85, 40.7000000001)])
        planner = Planner(EARTH)
        planner.interior_rect(sliver)
        misses_after_first = planner.cache.coverings.misses
        planner.interior_rect(sliver)
        assert planner.cache.coverings.misses == misses_after_first
