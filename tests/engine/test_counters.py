"""Regression: scalar and vector execution report identical counters.

The engine defines ``cells_probed`` / ``cache_hits`` once for every
path, so switching the execution model must never change them -- only
runtimes.  This pins that contract on a shared workload across the
plain block, the adaptive block (cold and warm), and the covering
baselines.
"""

from __future__ import annotations

import pytest

from repro.baselines import BinarySearchIndex, BTreeIndex
from repro.core import AdaptiveGeoBlock, AggSpec, CachePolicy, GeoBlock

AGGS = [AggSpec("count"), AggSpec("sum", "fare"), AggSpec("max", "distance")]

LEVEL = 14


def counters_for(aggregator, polygons):  # noqa: ANN001
    return [
        (result.cells_probed, result.cache_hits)
        for result in (aggregator.select(p, AGGS) for p in polygons)
    ]


class TestScalarVectorCounterParity:
    def test_plain_block(self, small_base, small_polygons):
        block = GeoBlock.build(small_base, LEVEL)
        block.query_mode = "vector"
        vector = counters_for(block, small_polygons)
        block.query_mode = "scalar"
        scalar = counters_for(block, small_polygons)
        assert vector == scalar
        assert all(probed > 0 for probed, _ in vector)

    def test_adaptive_block_cold_and_warm(self, small_base, small_polygons):
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=0.5)
        )
        adaptive.query_mode = "vector"
        cold_vector = counters_for(adaptive, small_polygons)
        adaptive.query_mode = "scalar"
        cold_scalar = counters_for(adaptive, small_polygons)
        assert cold_vector == cold_scalar
        adaptive.adapt()
        adaptive.query_mode = "vector"
        warm_vector = counters_for(adaptive, small_polygons)
        adaptive.query_mode = "scalar"
        warm_scalar = counters_for(adaptive, small_polygons)
        assert warm_vector == warm_scalar
        assert sum(hits for _, hits in warm_vector) > 0

    @pytest.mark.parametrize("index_cls", [BinarySearchIndex, BTreeIndex])
    def test_covering_baselines(self, index_cls, small_base, small_polygons):
        vector = index_cls(small_base, LEVEL)
        scalar = index_cls(small_base, LEVEL, scalar=True)
        assert counters_for(vector, small_polygons) == counters_for(scalar, small_polygons)

    def test_baselines_report_probed_cells_like_block(self, small_base, small_polygons):
        """All covering-based approaches probe the same covering, so the
        probe counter must agree across them (the BTree used to drop
        covering cells without hits from the count)."""
        block = GeoBlock.build(small_base, LEVEL)
        binary = BinarySearchIndex(small_base, LEVEL)
        btree = BTreeIndex(small_base, LEVEL)
        for polygon in small_polygons:
            covering = len(block.covering(polygon))
            assert binary.select(polygon, AGGS).cells_probed == covering
            assert btree.select(polygon, AGGS).cells_probed == covering

    def test_rejected_queries_leave_statistics_untouched(self, small_base, small_polygons):
        """Regression: a query with an unknown column must not feed the
        adaptation statistics -- it was never answered."""
        from repro.errors import QueryError

        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL))
        bad = [AggSpec("sum", "no_such_column")]
        with pytest.raises(QueryError):
            adaptive.select(small_polygons[0], bad)
        with pytest.raises(QueryError):
            adaptive.run_batch(small_polygons, aggs=bad)
        assert adaptive.statistics.queries_recorded == 0
        assert len(adaptive.statistics) == 0

    def test_batch_counters_match_sequential(self, small_base, small_polygons):
        block = GeoBlock.build(small_base, LEVEL)
        sequential = counters_for(block, small_polygons)
        batched = [
            (result.cells_probed, result.cache_hits)
            for result in block.run_batch(small_polygons, aggs=AGGS)
        ]
        assert sequential == batched
