"""Tests for cell aggregates and the accumulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import EARTH, cellops
from repro.core.aggregates import Accumulator, AggSpec, CellAggregates
from repro.errors import BuildError, QueryError
from repro.storage.etl import extract
from repro.storage.schema import Schema
from repro.storage.table import PointTable


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(31)
    count = 5000
    table = PointTable(
        Schema(["v", "w"]),
        rng.normal(-73.95, 0.05, count),
        rng.normal(40.75, 0.04, count),
        {"v": rng.gamma(2.0, 3.0, count), "w": rng.normal(0, 10, count)},
    )
    return extract(table, EARTH)


class TestBuild:
    def test_matches_brute_force_groups(self, base):
        level = 12
        aggregates = CellAggregates.build(base, level)
        block_keys = cellops.ancestors_at_level(base.keys, level)
        values = base.table.column("v")
        for row in range(0, len(aggregates), max(1, len(aggregates) // 25)):
            key = aggregates.keys[row]
            mask = block_keys == key
            assert aggregates.counts[row] == int(mask.sum())
            assert aggregates.sums["v"][row] == pytest.approx(float(values[mask].sum()))
            assert aggregates.mins["v"][row] == pytest.approx(float(values[mask].min()))
            assert aggregates.maxs["v"][row] == pytest.approx(float(values[mask].max()))

    def test_offsets_are_prefix_sums(self, base):
        aggregates = CellAggregates.build(base, 13)
        rebuilt = np.concatenate([[0], np.cumsum(aggregates.counts[:-1])])
        assert bool((aggregates.offsets == rebuilt).all())

    def test_keys_sorted_and_unique(self, base):
        aggregates = CellAggregates.build(base, 13)
        keys = aggregates.keys
        assert bool((keys[1:] > keys[:-1]).all())

    def test_spatial_key_extremes(self, base):
        aggregates = CellAggregates.build(base, 13)
        assert int(aggregates.key_mins[0]) == int(base.keys[0])
        assert int(aggregates.key_maxs[-1]) == int(base.keys[-1])

    def test_counts_total(self, base):
        aggregates = CellAggregates.build(base, 10)
        assert int(aggregates.counts.sum()) == len(base)

    def test_empty_base(self, base):
        empty = base.subset(0)
        aggregates = CellAggregates.build(empty, 12)
        assert len(aggregates) == 0

    def test_invalid_level(self, base):
        with pytest.raises(BuildError):
            CellAggregates.build(base, 99)


class TestCoarsen:
    def test_coarsen_matches_direct_build(self, base):
        fine = CellAggregates.build(base, 14)
        coarse = fine.coarsen(10)
        direct = CellAggregates.build(base, 10)
        assert bool((coarse.keys == direct.keys).all())
        assert bool((coarse.counts == direct.counts).all())
        assert bool((coarse.offsets == direct.offsets).all())
        assert np.allclose(coarse.sums["v"], direct.sums["v"])
        assert np.allclose(coarse.mins["w"], direct.mins["w"])
        assert np.allclose(coarse.maxs["w"], direct.maxs["w"])
        assert bool((coarse.key_mins == direct.key_mins).all())
        assert bool((coarse.key_maxs == direct.key_maxs).all())

    def test_refine_rejected(self, base):
        coarse = CellAggregates.build(base, 10)
        with pytest.raises(BuildError):
            coarse.coarsen(14)


class TestRecords:
    def test_record_width(self, base):
        aggregates = CellAggregates.build(base, 12)
        assert aggregates.record_width() == 1 + 3 * 2

    def test_slice_record_roundtrip(self, base):
        aggregates = CellAggregates.build(base, 12)
        record = aggregates.slice_record(0, len(aggregates))
        assert record[0] == len(base)
        assert record[1] == pytest.approx(float(base.table.column("v").sum()))

    def test_empty_slice_record_is_identity(self, base):
        aggregates = CellAggregates.build(base, 12)
        empty = aggregates.slice_record(5, 5)
        accumulator = Accumulator(aggregates.schema)
        accumulator.add_record(empty)
        assert accumulator.count == 0
        accumulator.add_slice(aggregates, 0, 3)
        reference = Accumulator(aggregates.schema)
        reference.add_slice(aggregates, 0, 3)
        assert accumulator.sums == reference.sums

    def test_memory_accounting(self, base):
        aggregates = CellAggregates.build(base, 12)
        assert aggregates.record_bytes == 40 + 24 * 2
        assert aggregates.memory_bytes() == aggregates.record_bytes * len(aggregates)


class TestAccumulator:
    def test_add_row_matches_add_slice(self, base):
        aggregates = CellAggregates.build(base, 12)
        by_slice = Accumulator(aggregates.schema)
        by_slice.add_slice(aggregates, 2, 9)
        by_rows = Accumulator(aggregates.schema)
        for row in range(2, 9):
            by_rows.add_row(aggregates, row)
        assert by_rows.count == by_slice.count
        for name in ("v", "w"):
            assert by_rows.sums[name] == pytest.approx(by_slice.sums[name])
            assert by_rows.mins[name] == by_slice.mins[name]
            assert by_rows.maxs[name] == by_slice.maxs[name]

    def test_tracked_columns_only(self, base):
        aggregates = CellAggregates.build(base, 12)
        accumulator = Accumulator(aggregates.schema, columns=["v"])
        accumulator.add_slice(aggregates, 0, 5)
        assert "w" not in accumulator.sums
        with pytest.raises(QueryError):
            accumulator.extract(AggSpec("sum", "w"))

    def test_extract_each_function(self, base):
        aggregates = CellAggregates.build(base, 12)
        accumulator = Accumulator(aggregates.schema)
        accumulator.add_slice(aggregates, 0, len(aggregates))
        values = base.table.column("v")
        assert accumulator.extract(AggSpec("count")) == len(base)
        assert accumulator.extract(AggSpec("sum", "v")) == pytest.approx(float(values.sum()))
        assert accumulator.extract(AggSpec("min", "v")) == pytest.approx(float(values.min()))
        assert accumulator.extract(AggSpec("max", "v")) == pytest.approx(float(values.max()))
        assert accumulator.extract(AggSpec("avg", "v")) == pytest.approx(float(values.mean()))

    def test_empty_accumulator_extracts(self, base):
        aggregates = CellAggregates.build(base, 12)
        accumulator = Accumulator(aggregates.schema)
        assert accumulator.extract(AggSpec("count")) == 0
        assert np.isnan(accumulator.extract(AggSpec("min", "v")))
        assert np.isnan(accumulator.extract(AggSpec("avg", "v")))

    def test_to_record_and_back(self, base):
        aggregates = CellAggregates.build(base, 12)
        accumulator = Accumulator(aggregates.schema)
        accumulator.add_slice(aggregates, 0, 7)
        record = accumulator.to_record()
        replay = Accumulator(aggregates.schema)
        replay.add_record(record)
        assert replay.count == accumulator.count
        assert replay.sums == pytest.approx(accumulator.sums)


class TestAggSpec:
    def test_key_format(self):
        assert AggSpec("count").key == "count(*)"
        assert AggSpec("sum", "v").key == "sum(v)"

    def test_validation(self):
        with pytest.raises(QueryError):
            AggSpec("median", "v")
        with pytest.raises(QueryError):
            AggSpec("sum")
