"""Tests for the adaptive (query-cache accelerated) GeoBlock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveGeoBlock, AggSpec, CachePolicy, GeoBlock
from repro.errors import QueryError

AGGS = [AggSpec("count"), AggSpec("sum", "fare"), AggSpec("min", "distance")]


@pytest.fixture()
def adaptive(small_base) -> AdaptiveGeoBlock:
    return AdaptiveGeoBlock(GeoBlock.build(small_base, 14), CachePolicy(threshold=0.5))


class TestEquivalence:
    def test_results_match_plain_block_in_every_cache_state(
        self, adaptive, small_block, small_polygons
    ):
        reference = {id(p): small_block.coarsened(14).select(p, AGGS) for p in small_polygons}
        # Cold (no trie).
        for polygon in small_polygons:
            got = adaptive.select(polygon, AGGS)
            assert got.count == reference[id(polygon)].count
        # Warm (trie built from the recorded statistics).
        adaptive.adapt()
        for polygon in small_polygons:
            got = adaptive.select(polygon, AGGS)
            want = reference[id(polygon)]
            assert got.count == want.count
            for key, value in want.values.items():
                if np.isnan(value):
                    assert np.isnan(got.values[key])
                else:
                    assert got.values[key] == pytest.approx(value)

    def test_scalar_mode_equivalence(self, adaptive, small_polygons):
        for polygon in small_polygons:
            adaptive.select(polygon, AGGS)
        adaptive.adapt()
        vector_results = [adaptive.select(p, AGGS) for p in small_polygons]
        adaptive.query_mode = "scalar"
        for polygon, want in zip(small_polygons, vector_results):
            got = adaptive.select(polygon, AGGS)
            assert got.count == want.count
            for key, value in want.values.items():
                if not np.isnan(value):
                    assert got.values[key] == pytest.approx(value)
        adaptive.query_mode = "vector"

    def test_count_bypasses_cache(self, adaptive, small_polygons):
        for polygon in small_polygons:
            adaptive.select(polygon)
        adaptive.adapt()
        for polygon in small_polygons[:4]:
            assert adaptive.count(polygon) == adaptive.block.count(polygon)


class TestCacheBehaviour:
    def test_hits_after_adapt(self, adaptive, small_polygons):
        for polygon in small_polygons:
            adaptive.select(polygon)
        adaptive.adapt()
        adaptive.reset_cache_counters()
        for polygon in small_polygons:
            adaptive.select(polygon)
        assert adaptive.cache_hit_rate > 0.3

    def test_no_hits_without_adapt(self, adaptive, small_polygons):
        for polygon in small_polygons:
            result = adaptive.select(polygon)
            assert result.cache_hits == 0
        assert adaptive.cache_hit_rate == 0.0

    def test_bigger_budget_more_hits(self, small_base, small_polygons):
        rates = []
        for threshold in (0.02, 1.0):
            adaptive = AdaptiveGeoBlock(
                GeoBlock.build(small_base, 14), CachePolicy(threshold=threshold)
            )
            for polygon in small_polygons:
                adaptive.select(polygon)
            adaptive.adapt()
            adaptive.reset_cache_counters()
            for polygon in small_polygons:
                adaptive.select(polygon)
            rates.append(adaptive.cache_hit_rate)
        assert rates[1] >= rates[0]

    def test_trie_respects_budget(self, small_base, small_polygons):
        policy = CachePolicy(threshold=0.05)
        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, 14), policy)
        for polygon in small_polygons:
            adaptive.select(polygon)
        trie = adaptive.adapt()
        assert trie.memory_bytes() <= policy.budget_bytes(adaptive.block.memory_bytes())

    def test_zero_threshold_caches_nothing(self, small_base, small_polygons):
        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, 14), CachePolicy(threshold=0.0))
        for polygon in small_polygons:
            adaptive.select(polygon)
        trie = adaptive.adapt()
        assert trie.num_cached == 0

    def test_auto_rebuild_cadence(self, small_base, small_polygons):
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, 14),
            CachePolicy(threshold=0.5, rebuild_every=3),
        )
        assert adaptive.trie is None
        for polygon in small_polygons[:3]:
            adaptive.select(polygon)
        assert adaptive.trie is not None

    def test_memory_includes_trie(self, adaptive, small_polygons):
        before = adaptive.memory_bytes()
        for polygon in small_polygons:
            adaptive.select(polygon)
        adaptive.adapt()
        assert adaptive.memory_bytes() >= before


class TestStatistics:
    def test_statistics_recorded_per_covering_cell(self, adaptive, quad_polygon):
        adaptive.select(quad_polygon)
        union = adaptive.covering(quad_polygon)
        stats = adaptive.statistics
        assert stats.queries_recorded == 1
        for cell in list(union)[:10]:
            assert stats.hits(cell) == 1


class TestPolicyValidation:
    def test_negative_threshold(self):
        with pytest.raises(QueryError):
            CachePolicy(threshold=-0.1)

    def test_bad_cadence(self):
        with pytest.raises(QueryError):
            CachePolicy(rebuild_every=0)

    def test_budget_math(self):
        policy = CachePolicy(threshold=0.25)
        assert policy.budget_bytes(1000) == 250
