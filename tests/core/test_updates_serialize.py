"""Tests for the updates extension (Section 5) and block persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import EARTH
from repro.core import AdaptiveGeoBlock, AggSpec, CachePolicy, GeoBlock
from repro.core.serialize import load_block, save_block
from repro.core.updates import apply_batch, apply_update, apply_update_adaptive
from repro.errors import BuildError, QueryError
from repro.geometry import Polygon
from repro.storage import PointTable, Schema, extract

AGGS = [AggSpec("count"), AggSpec("sum", "fare"), AggSpec("min", "fare"), AggSpec("max", "fare")]


def _fresh_block(level: int = 13) -> tuple[GeoBlock, object]:
    rng = np.random.default_rng(55)
    count = 8000
    table = PointTable(
        Schema(["fare", "distance"]),
        rng.normal(-73.95, 0.04, count),
        rng.normal(40.75, 0.03, count),
        {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
    )
    base = extract(table, EARTH)
    return GeoBlock.build(base, level), base


class TestUpdates:
    def test_update_in_existing_cell(self, quad_polygon):
        block, base = _fresh_block()
        # Use an existing point's location: its cell aggregate exists.
        x, y = float(base.table.xs[100]), float(base.table.ys[100])
        before = block.select(quad_polygon, AGGS)
        in_place = apply_update(block, x, y, {"fare": 1000.0, "distance": 1.0})
        assert in_place
        after = block.select(quad_polygon, AGGS)
        if quad_polygon.contains_point(x, y):
            assert after.count == before.count + 1
            assert after["max(fare)"] == 1000.0
        assert block.header.total_count == 8001

    def test_update_in_new_region_splices(self):
        block, _ = _fresh_block()
        cells_before = block.num_cells
        # Far away from the data: no cell aggregate exists there.
        in_place = apply_update(block, -73.5, 40.95, {"fare": 5.0, "distance": 2.0})
        assert not in_place
        assert block.num_cells == cells_before + 1
        probe = Polygon.regular(-73.5, 40.95, 0.01, 4)
        assert block.count(probe) == 1

    def test_update_result_matches_rebuild(self):
        """Updating tuple-by-tuple equals rebuilding from scratch."""
        block, base = _fresh_block()
        rng = np.random.default_rng(6)
        new_xs = rng.normal(-73.95, 0.04, 50)
        new_ys = rng.normal(40.75, 0.03, 50)
        new_fare = rng.gamma(3.0, 4.0, 50)
        new_distance = rng.gamma(2.0, 2.0, 50)
        apply_batch(block, new_xs, new_ys, {"fare": new_fare, "distance": new_distance})

        merged = base.table.concat(
            PointTable(
                base.table.schema,
                new_xs,
                new_ys,
                {"fare": new_fare, "distance": new_distance},
            )
        )
        rebuilt = GeoBlock.build(extract(merged, EARTH), 13)
        region = Polygon.regular(-73.95, 40.75, 0.05, 8)
        updated_result = block.select(region, AGGS)
        rebuilt_result = rebuilt.select(region, AGGS)
        assert updated_result.count == rebuilt_result.count
        assert updated_result["sum(fare)"] == pytest.approx(rebuilt_result["sum(fare)"])
        assert updated_result["max(fare)"] == pytest.approx(rebuilt_result["max(fare)"])

    def test_offsets_stay_consistent(self):
        block, _ = _fresh_block()
        apply_update(block, -73.95, 40.75, {"fare": 1.0, "distance": 1.0})
        aggregates = block.aggregates
        rebuilt = np.concatenate([[aggregates.offsets[0]],
                                  aggregates.offsets[:-1] + aggregates.counts[:-1]])
        assert bool((aggregates.offsets == rebuilt).all())

    def test_missing_column_rejected(self):
        block, _ = _fresh_block()
        with pytest.raises(QueryError):
            apply_update(block, -73.95, 40.75, {"fare": 1.0})

    def test_adaptive_update_refreshes_cached_ancestors(self):
        block, base = _fresh_block()
        adaptive = AdaptiveGeoBlock(GeoBlock.build(base, 13), CachePolicy(threshold=1.0))
        region = Polygon.regular(-73.95, 40.75, 0.05, 8)
        for _ in range(3):
            adaptive.select(region, AGGS)
        adaptive.adapt()
        cached_before = adaptive.select(region, AGGS)
        assert cached_before.cache_hits > 0
        x, y = float(base.table.xs[0]), float(base.table.ys[0])
        inside = region.contains_point(x, y)
        apply_update_adaptive(adaptive, x, y, {"fare": 999.0, "distance": 0.5})
        cached_after = adaptive.select(region, AGGS)
        plain = adaptive.block.select(region, AGGS)
        # Cache and base agree after the update.
        assert cached_after.count == plain.count
        assert cached_after["sum(fare)"] == pytest.approx(plain["sum(fare)"])
        if inside:
            assert cached_after.count == cached_before.count + 1


class TestSerialization:
    def test_roundtrip(self, tmp_path, quad_polygon):
        block, _ = _fresh_block()
        path = tmp_path / "block.npz"
        save_block(block, path)
        loaded = load_block(path)
        assert loaded.level == block.level
        assert loaded.num_cells == block.num_cells
        original = block.select(quad_polygon, AGGS)
        restored = loaded.select(quad_polygon, AGGS)
        assert restored.count == original.count
        for key, value in original.values.items():
            if not np.isnan(value):
                assert restored.values[key] == pytest.approx(value)

    def test_roundtrip_preserves_count_path(self, tmp_path, quad_polygon):
        block, _ = _fresh_block()
        path = tmp_path / "block.npz"
        save_block(block, path)
        assert load_block(path).count(quad_polygon) == block.count(quad_polygon)

    def test_version_check(self, tmp_path):
        block, _ = _fresh_block()
        path = tmp_path / "block.npz"
        save_block(block, path)
        # Corrupt the version field.
        import json

        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["version"] = 999
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(BuildError):
            load_block(path)

    def test_schema_kinds_roundtrip(self, tmp_path):
        from repro.storage import ColumnKind, ColumnSpec

        rng = np.random.default_rng(1)
        table = PointTable(
            Schema([ColumnSpec("ts", ColumnKind.TEMPORAL)]),
            rng.uniform(-74, -73.9, 100),
            rng.uniform(40.7, 40.8, 100),
            {"ts": rng.integers(0, 1000, 100)},
        )
        block = GeoBlock.build(extract(table, EARTH), 10)
        path = tmp_path / "temporal.npz"
        save_block(block, path)
        loaded = load_block(path)
        assert loaded.aggregates.schema.spec("ts").kind is ColumnKind.TEMPORAL
