"""Tests for query statistics scoring and the build pipelines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cells import cellid
from repro.cells.union import CellUnion
from repro.core.builder import build_incremental, build_isolated, payoff_point
from repro.core.statistics import QueryStatistics
from repro.data.nyc import nyc_cleaning_rules, nyc_taxi
from repro.storage.etl import extract
from repro.storage.expr import col
from repro.cells.space import EARTH


def _union(*cells: int) -> CellUnion:
    return CellUnion(np.asarray(cells, dtype=np.int64))


class TestScoring:
    def test_score_adds_parent_hits(self):
        stats = QueryStatistics()
        parent = cellid.make_id(8, 5)
        child = cellid.child(parent, 1)
        stats.record_cell(parent, hits=3)
        stats.record_cell(child, hits=2)
        assert stats.score(child) == 5
        assert stats.score(parent) == 3

    def test_record_covering_counts_each_cell(self):
        stats = QueryStatistics()
        cells = [cellid.make_id(9, pos) for pos in (1, 5)]
        stats.record_covering(_union(*cells))
        stats.record_covering(_union(cells[0]))
        assert stats.hits(cells[0]) == 2
        assert stats.hits(cells[1]) == 1
        assert stats.queries_recorded == 2

    def test_ranking_order(self):
        """Descending score, then ascending level, then key."""
        stats = QueryStatistics()
        coarse = cellid.make_id(6, 3)
        fine = cellid.make_id(9, 40)
        fine_same_score = cellid.make_id(9, 41)
        stats.record_cell(coarse, hits=2)
        stats.record_cell(fine, hits=2)
        stats.record_cell(fine_same_score, hits=2)
        ranked = stats.ranked_candidates()
        ranked_cells = [candidate.cell for candidate in ranked]
        assert ranked_cells.index(coarse) < ranked_cells.index(fine)
        assert ranked_cells.index(fine) < ranked_cells.index(fine_same_score)

    def test_children_of_seen_cells_are_candidates(self):
        stats = QueryStatistics()
        parent = cellid.make_id(8, 5)
        stats.record_cell(parent, hits=4)
        ranked_cells = {candidate.cell for candidate in stats.ranked_candidates()}
        for kid in cellid.children(parent):
            assert kid in ranked_cells

    def test_level_filters(self):
        stats = QueryStatistics()
        stats.record_cell(cellid.make_id(5, 1), hits=1)
        stats.record_cell(cellid.make_id(12, 1), hits=1)
        ranked = stats.ranked_candidates(min_level=10, max_level=12)
        assert all(10 <= candidate.level <= 12 for candidate in ranked)

    def test_clear(self):
        stats = QueryStatistics()
        stats.record_cell(cellid.make_id(5, 1))
        stats.clear()
        assert len(stats) == 0
        assert stats.queries_recorded == 0


class TestPayoffMath:
    def test_simple_payoff(self):
        # Sort costs 10s; incremental saves 2s per build.
        assert payoff_point(10.0, 1.0, 3.0) == 5

    def test_rounds_up(self):
        assert payoff_point(10.0, 1.0, 4.0) == 4  # 10/3 -> ceil

    def test_never_pays_off(self):
        assert payoff_point(10.0, 3.0, 2.0) == math.inf
        assert payoff_point(10.0, 3.0, 3.0) == math.inf


class TestBuildPipelines:
    @pytest.fixture(scope="class")
    def raw(self):
        return nyc_taxi(15_000, seed=5)

    @pytest.fixture(scope="class")
    def base(self, raw):
        return extract(raw, EARTH, nyc_cleaning_rules())

    def test_incremental_equals_isolated_results(self, raw, base):
        predicate = col("trip_distance") >= 4
        incremental = build_incremental(base, 13, predicate).block
        isolated = build_isolated(raw, EARTH, 13, predicate, nyc_cleaning_rules()).block
        assert incremental.header.total_count == isolated.header.total_count
        assert bool((incremental.aggregates.keys == isolated.aggregates.keys).all())
        assert np.allclose(
            incremental.aggregates.sums["fare_amount"],
            isolated.aggregates.sums["fare_amount"],
        )

    def test_incremental_reports_no_sort_time(self, base):
        report = build_incremental(base, 13)
        assert report.sort_seconds == 0.0
        assert report.build_seconds > 0.0

    def test_isolated_reports_sort_time(self, raw):
        report = build_isolated(raw, EARTH, 13, col("passenger_cnt") == 1, nyc_cleaning_rules())
        assert report.sort_seconds > 0.0
        assert report.total_seconds >= report.build_seconds

    def test_isolated_block_carries_predicate(self, raw):
        predicate = col("passenger_cnt") > 1
        report = build_isolated(raw, EARTH, 13, predicate, nyc_cleaning_rules())
        assert report.block.predicate is predicate
