"""Serialize round-trips for adaptive and sharded blocks (format v2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AdaptiveGeoBlock,
    AggSpec,
    CachePolicy,
    GeoBlock,
    load_adaptive_block,
    load_block,
    save_adaptive_block,
    save_block,
)
from repro.engine.shards import ShardedGeoBlock
from repro.errors import BuildError

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
    AggSpec("avg", "distance"),
]

LEVEL = 14


def assert_same_answers(want_block, got_block, polygons):  # noqa: ANN001
    for polygon in polygons:
        want = want_block.select(polygon, AGGS)
        got = got_block.select(polygon, AGGS)
        assert got.count == want.count
        assert got.cache_hits == want.cache_hits
        for key, value in want.values.items():
            if np.isnan(value):
                assert np.isnan(got.values[key])
            else:
                assert got.values[key] == value


class TestShardedRoundTrip:
    def test_sharded_block_survives_save_load(self, small_base, small_polygons, tmp_path):
        block = ShardedGeoBlock.build(small_base, LEVEL, shard_level=11)
        path = tmp_path / "sharded.npz"
        save_block(block, path)
        loaded = load_block(path)
        assert isinstance(loaded, ShardedGeoBlock)
        assert loaded.shard_level == block.shard_level
        assert loaded.num_shards == block.num_shards
        assert [(s.prefix, s.lo, s.hi) for s in loaded.shards] == [
            (s.prefix, s.lo, s.hi) for s in block.shards
        ]
        assert_same_answers(block, loaded, small_polygons)

    def test_sharded_batch_after_load(self, small_base, small_polygons, tmp_path):
        block = ShardedGeoBlock.build(small_base, LEVEL)
        path = tmp_path / "sharded.npz"
        save_block(block, path)
        loaded = load_block(path)
        for want, got in zip(
            block.run_batch(small_polygons, aggs=AGGS),
            loaded.run_batch(small_polygons, aggs=AGGS),
        ):
            assert got.count == want.count

    def test_curve_layout_round_trips_splits(self, small_base, small_polygons, tmp_path):
        block = ShardedGeoBlock.build(small_base, LEVEL, shard_count=8)
        path = tmp_path / "curve.npz"
        save_block(block, path)
        loaded = load_block(path)
        assert isinstance(loaded, ShardedGeoBlock)
        assert loaded.layout == "curve"
        assert loaded.shard_level is None
        assert np.array_equal(np.array(loaded.splits), np.array(block.splits))
        assert [(s.lo, s.hi, s.key_lo, s.key_hi) for s in loaded.shards] == [
            (s.lo, s.hi, s.key_lo, s.key_hi) for s in block.shards
        ]
        assert_same_answers(block, loaded, small_polygons)

    def test_v2_sharded_file_loads_as_prefix(self, small_base, small_polygons, tmp_path):
        """Pre-v3 sharded files carry only a shard level and no layout
        field; they must load back as the prefix layout they were built
        with."""
        from repro.core import serialize

        block = ShardedGeoBlock.build(small_base, LEVEL, shard_level=11)
        path = tmp_path / "v3.npz"
        save_block(block, path)
        with np.load(path) as archive:
            meta = serialize.read_archive_meta(archive)
            arrays = {name: archive[name] for name in archive.files if name != "meta"}
        # Rewrite the metadata exactly as version 2 wrote it.
        meta["version"] = 2
        del meta["layout"]
        assert "shard_level" in meta
        old_path = tmp_path / "v2.npz"
        serialize.write_archive(old_path, meta, arrays)
        loaded = load_block(old_path)
        assert isinstance(loaded, ShardedGeoBlock)
        assert loaded.layout == "prefix"
        assert loaded.shard_level == 11
        assert [(s.prefix, s.lo, s.hi) for s in loaded.shards] == [
            (s.prefix, s.lo, s.hi) for s in block.shards
        ]
        assert_same_answers(block, loaded, small_polygons)


class TestAdaptiveRoundTrip:
    @pytest.fixture()
    def warmed(self, small_base, small_polygons) -> AdaptiveGeoBlock:
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL),
            CachePolicy(threshold=0.5, rebuild_every=500),
        )
        for polygon in small_polygons:
            adaptive.select(polygon, AGGS)
        adaptive.adapt()
        return adaptive

    def test_trie_and_statistics_survive(self, warmed, small_polygons, tmp_path):
        path = tmp_path / "adaptive.npz"
        save_adaptive_block(warmed, path)
        loaded = load_adaptive_block(path)
        # Policy round-trips.
        assert loaded.policy.threshold == warmed.policy.threshold
        assert loaded.policy.rebuild_every == warmed.policy.rebuild_every
        # Statistics round-trip exactly.
        assert loaded.statistics.queries_recorded == warmed.statistics.queries_recorded
        cells, hits = warmed.statistics.export_counts()
        for cell, count in zip(cells.tolist(), hits.tolist()):
            assert loaded.statistics.hits(cell) == count
        # Trie round-trips: same layout, same cached cells.
        assert loaded.trie is not None
        assert loaded.trie.root_cell == warmed.trie.root_cell
        assert loaded.trie.num_nodes == warmed.trie.num_nodes
        assert loaded.trie.num_cached == warmed.trie.num_cached
        assert loaded.trie.memory_bytes() == warmed.trie.memory_bytes()
        assert loaded.trie.cached_cells() == warmed.trie.cached_cells()

    def test_identical_query_answers_with_cache_hits(
        self, warmed, small_polygons, tmp_path
    ):
        path = tmp_path / "adaptive.npz"
        save_adaptive_block(warmed, path)
        loaded = load_adaptive_block(path)
        assert_same_answers(warmed, loaded, small_polygons)
        # The loaded cache actually answers queries.
        hit_totals = sum(
            loaded.select(p, AGGS).cache_hits for p in small_polygons
        )
        assert hit_totals > 0

    def test_adapt_continues_from_persisted_statistics(
        self, warmed, small_polygons, tmp_path
    ):
        path = tmp_path / "adaptive.npz"
        save_adaptive_block(warmed, path)
        loaded = load_adaptive_block(path)
        trie = loaded.adapt()  # rebuild purely from persisted statistics
        assert trie.num_cached == warmed.trie.num_cached

    def test_cold_adaptive_round_trip(self, small_base, small_polygons, tmp_path):
        """No trie yet: statistics-only persistence."""
        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL))
        for polygon in small_polygons[:4]:
            adaptive.select(polygon, AGGS)
        path = tmp_path / "cold.npz"
        save_adaptive_block(adaptive, path)
        loaded = load_adaptive_block(path)
        assert loaded.trie is None
        assert loaded.statistics.queries_recorded == 4
        assert_same_answers(adaptive, loaded, small_polygons)

    def test_cache_refreshes_survive_save_load(self, warmed, small_polygons, tmp_path):
        """Regression: apply_update_adaptive mutates the trie's live
        record rows; persistence must capture those, not the build-time
        array, or loaded blocks silently answer with stale aggregates."""
        from repro.core import apply_update_adaptive

        # Update inside a cached region so a trie record is refreshed.
        polygon = small_polygons[0]
        box = polygon.bounding_box
        x = (box.min_x + box.max_x) / 2
        y = (box.min_y + box.max_y) / 2
        apply_update_adaptive(warmed, x, y, {"fare": 1000.0, "distance": 1.0})
        path = tmp_path / "updated.npz"
        save_adaptive_block(warmed, path)
        loaded = load_adaptive_block(path)
        assert_same_answers(warmed, loaded, small_polygons)

    def test_sharded_base_block_round_trips(self, small_base, small_polygons, tmp_path):
        adaptive = AdaptiveGeoBlock(
            ShardedGeoBlock.build(small_base, LEVEL), CachePolicy(threshold=0.5)
        )
        for polygon in small_polygons:
            adaptive.select(polygon, AGGS)
        adaptive.adapt()
        path = tmp_path / "adaptive-sharded.npz"
        save_adaptive_block(adaptive, path)
        loaded = load_adaptive_block(path)
        assert isinstance(loaded.block, ShardedGeoBlock)
        assert_same_answers(adaptive, loaded, small_polygons)


class TestKindGuards:
    def test_save_block_rejects_adaptive(self, small_base, tmp_path):
        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL))
        with pytest.raises(BuildError):
            save_block(adaptive, tmp_path / "x.npz")

    def test_load_block_rejects_adaptive_files(self, small_base, tmp_path):
        adaptive = AdaptiveGeoBlock(GeoBlock.build(small_base, LEVEL))
        path = tmp_path / "adaptive.npz"
        save_adaptive_block(adaptive, path)
        with pytest.raises(BuildError):
            load_block(path)

    def test_load_adaptive_rejects_plain_files(self, small_base, tmp_path):
        path = tmp_path / "plain.npz"
        save_block(GeoBlock.build(small_base, LEVEL), path)
        with pytest.raises(BuildError):
            load_adaptive_block(path)


class TestUnifiedSaveLoad:
    """The kind-dispatching save()/load() pair and its delegating shims."""

    def _handles(self, small_base, small_polygons):
        plain = GeoBlock.build(small_base, LEVEL)
        sharded = ShardedGeoBlock.build(small_base, LEVEL, shard_level=11)
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=0.5)
        )
        for polygon in small_polygons:
            adaptive.select(polygon, AGGS)
        adaptive.adapt()
        return {"geoblock": plain, "sharded": sharded, "adaptive": adaptive}

    def test_load_restores_each_kind(self, small_base, small_polygons, tmp_path):
        from repro.core import load, save

        for kind, block in self._handles(small_base, small_polygons).items():
            path = tmp_path / f"{kind}.npz"
            save(block, path)
            loaded = load(path)
            assert type(loaded) is type(block)
            assert_same_answers(block, loaded, small_polygons)

    def test_kind_property_matches_serialized_kind(self, small_base):
        assert GeoBlock.build(small_base, LEVEL).kind == "geoblock"
        assert ShardedGeoBlock.build(small_base, LEVEL).kind == "sharded"

    def test_shims_delegate_bit_identically(self, small_base, small_polygons, tmp_path):
        """save_block/save_adaptive_block write byte-for-byte what the
        unified save() writes; load_block/load_adaptive_block return
        blocks with identical aggregate arrays."""
        import numpy as np

        from repro.core import load, save

        block = ShardedGeoBlock.build(small_base, LEVEL, shard_level=11)
        adaptive = AdaptiveGeoBlock(
            GeoBlock.build(small_base, LEVEL), CachePolicy(threshold=0.5)
        )
        for polygon in small_polygons:
            adaptive.select(polygon, AGGS)
        adaptive.adapt()
        for handle, legacy_save, legacy_load in (
            (block, save_block, load_block),
            (adaptive, save_adaptive_block, load_adaptive_block),
        ):
            new_path = tmp_path / "new.npz"
            old_path = tmp_path / "old.npz"
            save(handle, new_path)
            legacy_save(handle, old_path)
            with np.load(new_path) as new_archive, np.load(old_path) as old_archive:
                assert sorted(new_archive.files) == sorted(old_archive.files)
                for name in new_archive.files:
                    assert np.array_equal(new_archive[name], old_archive[name]), name
            via_new = load(old_path)
            via_old = legacy_load(new_path)
            assert type(via_new) is type(via_old)
            assert_same_answers(via_new, via_old, small_polygons)

    def test_save_adaptive_shim_rejects_plain_blocks(self, small_base, tmp_path):
        with pytest.raises(BuildError):
            save_adaptive_block(GeoBlock.build(small_base, LEVEL), tmp_path / "x.npz")
