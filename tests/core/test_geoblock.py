"""Tests for the GeoBlock: build, queries, equivalences, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import EARTH, cellid
from repro.core import AggSpec, GeoBlock, common_ancestor
from repro.core.geoblock import QueryResult
from repro.errors import BuildError, QueryError
from repro.geometry import Polygon
from repro.storage import col

AGGS = [
    AggSpec("count"),
    AggSpec("sum", "fare"),
    AggSpec("min", "fare"),
    AggSpec("max", "distance"),
    AggSpec("avg", "distance"),
]


@st.composite
def query_polygons(draw):
    cx = draw(st.floats(min_value=-74.15, max_value=-73.72))
    cy = draw(st.floats(min_value=40.55, max_value=40.9))
    radius = draw(st.floats(min_value=0.005, max_value=0.07))
    sides = draw(st.integers(min_value=3, max_value=9))
    return Polygon.regular(cx, cy, radius, sides)


class TestBuild:
    def test_num_cells_and_total(self, small_base, small_block):
        assert small_block.num_cells > 0
        assert small_block.header.total_count == len(small_base)

    def test_header_bounds(self, small_base, small_block):
        assert small_block.header.min_cell == int(small_block.aggregates.keys[0])
        assert small_block.header.max_cell == int(small_block.aggregates.keys[-1])
        assert small_block.header.min_leaf == int(small_base.keys[0])
        assert small_block.header.max_leaf == int(small_base.keys[-1])

    def test_predicate_build(self, small_base):
        block = GeoBlock.build(small_base, 13, col("fare") >= 10.0)
        expected = int((small_base.table.column("fare") >= 10.0).sum())
        assert block.header.total_count == expected

    def test_empty_predicate_build(self, small_base):
        block = GeoBlock.build(small_base, 13, col("fare") > 1e12)
        assert block.num_cells == 0
        assert block.header.is_empty


class TestQueriesAgainstGroundTruth:
    @given(query_polygons())
    @settings(max_examples=25, deadline=None)
    def test_select_equals_covering_truth(self, polygon):
        block = _shared_block()
        base = _shared_base()
        union = block.covering(polygon)
        member = union.contains_leaves(base.keys)
        result = block.select(polygon, AGGS)
        assert result.count == int(member.sum())
        if result.count:
            fares = base.table.column("fare")[member]
            distances = base.table.column("distance")[member]
            assert result["sum(fare)"] == pytest.approx(float(fares.sum()))
            assert result["min(fare)"] == pytest.approx(float(fares.min()))
            assert result["max(distance)"] == pytest.approx(float(distances.max()))
            assert result["avg(distance)"] == pytest.approx(float(distances.mean()))

    @given(query_polygons())
    @settings(max_examples=25, deadline=None)
    def test_count_equals_select_count(self, polygon):
        block = _shared_block()
        assert block.count(polygon) == block.select(polygon).count

    @given(query_polygons())
    @settings(max_examples=25, deadline=None)
    def test_covering_is_superset_of_polygon(self, polygon):
        """Covering errors are false positives only (Section 4.3)."""
        block = _shared_block()
        base = _shared_base()
        exact = polygon.count_contained(base.table.xs, base.table.ys)
        assert block.count(polygon) >= exact


class TestExecutionModes:
    @given(query_polygons())
    @settings(max_examples=20, deadline=None)
    def test_scalar_vector_listing1_agree(self, polygon):
        block = _shared_block()
        vector = block.select(polygon, AGGS)
        scalar = block.select_scalar(polygon, AGGS)
        listing = block.select_listing1(polygon, AGGS)
        for other in (scalar, listing):
            assert other.count == vector.count
            for key, value in vector.values.items():
                if np.isnan(value):
                    assert np.isnan(other.values[key])
                else:
                    assert other.values[key] == pytest.approx(value)

    def test_query_mode_dispatch(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, 13)
        vector_result = block.select(quad_polygon, AGGS)
        block.query_mode = "scalar"
        scalar_result = block.select(quad_polygon, AGGS)
        assert scalar_result.count == vector_result.count


class TestCellUnionTargets:
    def test_precomputed_union_equals_polygon(self, small_block, quad_polygon):
        union = small_block.covering(quad_polygon)
        assert small_block.select(union).count == small_block.select(quad_polygon).count
        assert small_block.count(union) == small_block.count(quad_polygon)


class TestCoarsened:
    def test_coarsened_counts_match_direct(self, small_base, small_block, quad_polygon):
        coarse = small_block.coarsened(11)
        direct = GeoBlock.build(small_base, 11)
        assert coarse.count(quad_polygon) == direct.count(quad_polygon)
        assert coarse.num_cells == direct.num_cells

    def test_refine_rejected(self, small_block):
        with pytest.raises(BuildError):
            small_block.coarsened(small_block.level + 1)

    def test_coarser_block_overcounts_more(self, small_base, quad_polygon):
        fine = GeoBlock.build(small_base, 16)
        coarse = GeoBlock.build(small_base, 9)
        assert coarse.count(quad_polygon) >= fine.count(quad_polygon)


class TestValidation:
    def test_unknown_column_rejected(self, small_block, quad_polygon):
        with pytest.raises(QueryError):
            small_block.select(quad_polygon, [AggSpec("sum", "nope")])

    def test_memory_bytes_positive(self, small_block):
        assert small_block.memory_bytes() == small_block.aggregates.memory_bytes()
        assert small_block.memory_bytes() > 0

    def test_empty_block_queries(self, small_base, quad_polygon):
        block = GeoBlock.build(small_base, 13, col("fare") > 1e12)
        assert block.count(quad_polygon) == 0
        result = block.select(quad_polygon, AGGS)
        assert result.count == 0


class TestCommonAncestor:
    def test_equal_leaves(self):
        leaf = cellid.make_id(30, 12345)
        assert common_ancestor(leaf, leaf) == leaf

    def test_known_parent(self):
        parent = cellid.make_id(10, 77)
        first = cellid.range_min(parent)
        last = cellid.range_max(parent)
        assert common_ancestor(first, last) == parent

    def test_far_apart(self):
        a = cellid.make_id(30, 0)
        b = cellid.make_id(30, 4**30 - 1)
        assert cellid.level_of(common_ancestor(a, b)) == 0

    def test_root_cell_of_block(self, small_base, small_block):
        root = small_block.root_cell()
        assert cellid.contains(root, int(small_base.keys[0]))
        assert cellid.contains(root, int(small_base.keys[-1]))


class TestQueryResult:
    def test_getitem(self):
        result = QueryResult(values={"count(*)": 5.0}, count=5)
        assert result["count(*)"] == 5.0


# Shared module-level state for hypothesis tests (fixtures are not
# directly usable inside @given).
_CACHE: dict[str, object] = {}


def _shared_base():
    if "base" not in _CACHE:
        from repro.storage import PointTable, Schema, extract

        rng = np.random.default_rng(99)
        count = 20_000
        xs = np.concatenate(
            [rng.normal(-73.98, 0.03, count // 2), rng.normal(-73.80, 0.06, count // 2)]
        )
        ys = np.concatenate(
            [rng.normal(40.75, 0.03, count // 2), rng.normal(40.68, 0.05, count // 2)]
        )
        table = PointTable(
            Schema(["fare", "distance"]),
            xs,
            ys,
            {"fare": rng.gamma(3.0, 4.0, count), "distance": rng.gamma(2.0, 2.0, count)},
        )
        _CACHE["base"] = extract(table, EARTH)
    return _CACHE["base"]


def _shared_block():
    if "block" not in _CACHE:
        _CACHE["block"] = GeoBlock.build(_shared_base(), 15)
    return _CACHE["block"]
