"""Tests for the global header."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import EARTH
from repro.core.aggregates import CellAggregates
from repro.core.header import GlobalHeader
from repro.storage import PointTable, Schema, extract


@pytest.fixture(scope="module")
def aggregates():
    rng = np.random.default_rng(12)
    count = 3000
    table = PointTable(
        Schema(["v"]),
        rng.normal(-73.95, 0.05, count),
        rng.normal(40.75, 0.04, count),
        {"v": rng.normal(10.0, 2.0, count)},
    )
    return CellAggregates.build(extract(table, EARTH), 12)


class TestGlobalHeader:
    def test_totals(self, aggregates):
        header = GlobalHeader.from_aggregates(aggregates, 12)
        assert header.total_count == 3000
        assert header.level == 12
        assert not header.is_empty

    def test_pruning_range(self, aggregates):
        header = GlobalHeader.from_aggregates(aggregates, 12)
        assert header.min_cell == int(aggregates.keys[0])
        assert header.max_cell == int(aggregates.keys[-1])
        assert header.min_leaf <= header.max_leaf

    def test_global_record_is_block_wide_aggregate(self, aggregates):
        header = GlobalHeader.from_aggregates(aggregates, 12)
        assert header.global_record[0] == 3000
        assert header.global_record[1] == pytest.approx(float(aggregates.sums["v"].sum()))

    def test_empty_header(self):
        empty = CellAggregates(
            schema=Schema(["v"]),
            keys=np.empty(0, dtype=np.int64),
            offsets=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            key_mins=np.empty(0, dtype=np.int64),
            key_maxs=np.empty(0, dtype=np.int64),
            sums={"v": np.empty(0)},
            mins={"v": np.empty(0)},
            maxs={"v": np.empty(0)},
        )
        header = GlobalHeader.from_aggregates(empty, 12)
        assert header.is_empty
        assert header.total_count == 0
