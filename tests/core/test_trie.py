"""Tests for the AggregateTrie compact layout and probing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import cellid
from repro.core.trie import NODE_BYTES, TrieBuilder
from repro.errors import BuildError, QueryError

WIDTH = 4  # count + sum/min/max of one column


def _record(value: float) -> np.ndarray:
    return np.asarray([value, value, value, value], dtype=np.float64)


@pytest.fixture()
def root() -> int:
    return cellid.make_id(4, 7)


class TestLayout:
    def test_node_is_eight_bytes(self):
        assert NODE_BYTES == 8

    def test_children_allocated_four_at_a_time(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        child = cellid.child(root, 2)
        builder.insert(child, _record(1.0))
        trie = builder.finish()
        # Root + one block of four children.
        assert trie.num_nodes == 5
        assert trie.memory_bytes() == 5 * NODE_BYTES + WIDTH * 8

    def test_deep_insert_allocates_per_level(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        deep = cellid.first_child_at(root, 8)  # 4 levels below the root
        builder.insert(deep, _record(2.0))
        trie = builder.finish()
        assert trie.num_nodes == 1 + 4 * 4
        assert trie.num_cached == 1

    def test_null_offsets_encode_absence(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        builder.insert(cellid.child(root, 1), _record(3.0))
        trie = builder.finish()
        # The sibling slots exist but have neither children nor records.
        probe = trie.probe(cellid.child(root, 0))
        assert probe.status == "miss"


class TestProbing:
    def test_hit(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        cell = cellid.child(root, 3)
        builder.insert(cell, _record(7.0))
        trie = builder.finish()
        probe = trie.probe(cell)
        assert probe.status == "hit"
        assert probe.record[0] == 7.0

    def test_miss_outside_root(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        trie = builder.finish()
        foreign = cellid.make_id(6, 0)
        assert not cellid.contains(root, foreign)
        assert trie.probe(foreign).status == "miss"

    def test_partial_with_cached_children(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        parent = cellid.child(root, 0)
        kids = cellid.children(parent)
        builder.insert(kids[0], _record(1.0))
        builder.insert(kids[2], _record(2.0))
        trie = builder.finish()
        probe = trie.probe(parent)
        assert probe.status == "partial"
        assert len(probe.child_records) == 2
        assert sorted(probe.uncached_children) == sorted([kids[1], kids[3]])

    def test_hit_preferred_over_children(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        parent = cellid.child(root, 0)
        builder.insert(parent, _record(9.0))
        builder.insert(cellid.child(parent, 1), _record(1.0))
        trie = builder.finish()
        assert trie.probe(parent).status == "hit"

    def test_root_probe(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        builder.insert(root, _record(5.0))
        trie = builder.finish()
        assert trie.probe(root).status == "hit"

    def test_cached_cells_introspection(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=10_000)
        cells = [cellid.child(root, 1), cellid.first_child_at(root, 7)]
        for index, cell in enumerate(cells):
            builder.insert(cell, _record(float(index)))
        trie = builder.finish()
        assert sorted(trie.cached_cells()) == sorted(cells)


class TestBudget:
    def test_would_fit_accounts_path_cost(self, root):
        record_bytes = WIDTH * 8
        # Root exists (8B); inserting a child costs one 4-node block
        # (32B) plus the record.
        builder = TrieBuilder(root, WIDTH, budget_bytes=NODE_BYTES + 4 * NODE_BYTES + record_bytes)
        assert builder.would_fit(cellid.child(root, 0))
        builder.insert(cellid.child(root, 0), _record(1.0))
        # A sibling fits only its record now (block already allocated).
        assert not builder.would_fit(cellid.first_child_at(root, 9))
        assert builder.would_fit(cellid.child(root, 1)) is False  # record exceeds budget

    def test_zero_budget_fits_nothing(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=0)
        assert not builder.would_fit(cellid.child(root, 0))


class TestValidation:
    def test_wrong_record_width(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=1000)
        with pytest.raises(BuildError):
            builder.insert(cellid.child(root, 0), np.zeros(WIDTH + 1))

    def test_insert_outside_root(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=1000)
        with pytest.raises(QueryError):
            builder.insert(cellid.make_id(6, 0), _record(0.0))

    def test_duplicate_insert(self, root):
        builder = TrieBuilder(root, WIDTH, budget_bytes=1000)
        cell = cellid.child(root, 0)
        builder.insert(cell, _record(0.0))
        with pytest.raises(BuildError):
            builder.insert(cell, _record(1.0))
