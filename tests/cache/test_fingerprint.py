"""Content-addressed region fingerprints: stability and distinctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells.fingerprint import region_fingerprint
from repro.cells.union import CellUnion
from repro.geometry import BoundingBox, MultiPolygon, Polygon


def quad(offset: float = 0.0) -> Polygon:
    return Polygon(
        [
            (-74.05 + offset, 40.65),
            (-73.85 + offset, 40.63),
            (-73.82 + offset, 40.80),
            (-74.02 + offset, 40.82),
        ]
    )


class TestStability:
    def test_equal_content_equal_fingerprint(self):
        """Two objects with the same vertices -- the wire-request
        pattern, where every request parses a fresh polygon -- share a
        fingerprint."""
        assert region_fingerprint(quad()) == region_fingerprint(quad())

    def test_fingerprint_is_deterministic_for_one_object(self):
        polygon = quad()
        assert region_fingerprint(polygon) == region_fingerprint(polygon)

    def test_closing_vertex_normalised_away(self):
        """GeoJSON rings repeat the closing vertex; Polygon drops it, so
        both spellings fingerprint identically."""
        vertices = quad().vertices()
        closed = Polygon(vertices + vertices[:1])
        assert region_fingerprint(closed) == region_fingerprint(quad())

    def test_ring_orientation_normalised(self):
        """Clockwise input rings are normalised to counter-clockwise at
        construction, so both orientations fingerprint identically."""
        vertices = quad().vertices()
        assert region_fingerprint(Polygon(vertices[::-1])) == region_fingerprint(quad())

    def test_bbox_fingerprint_stable(self):
        box = BoundingBox(-74.0, 40.6, -73.8, 40.8)
        clone = BoundingBox(-74.0, 40.6, -73.8, 40.8)
        assert region_fingerprint(box) == region_fingerprint(clone)


class TestDistinctness:
    def test_different_geometry_differs(self):
        assert region_fingerprint(quad()) != region_fingerprint(quad(0.01))

    def test_tiny_perturbation_differs(self):
        vertices = quad().vertices()
        nudged = [(x + 1e-12, y) for x, y in vertices[:1]] + vertices[1:]
        assert region_fingerprint(Polygon(nudged)) != region_fingerprint(quad())

    def test_bbox_differs_from_equivalent_polygon(self):
        """Type-tagged: a bbox and the rectangle polygon over it are
        distinct cacheable objects (their covering paths differ)."""
        box = BoundingBox(-74.0, 40.6, -73.8, 40.8)
        assert region_fingerprint(box) != region_fingerprint(Polygon.from_box(box))

    def test_multipolygon_differs_from_single_part(self):
        part = quad()
        multi = MultiPolygon([part])
        assert region_fingerprint(multi) != region_fingerprint(part)

    def test_multipolygon_part_order_matters(self):
        first, second = quad(), quad(0.3)
        assert region_fingerprint(MultiPolygon([first, second])) != region_fingerprint(
            MultiPolygon([second, first])
        )


class TestErrors:
    def test_uncacheable_target_raises(self):
        union = CellUnion(np.asarray([4], dtype=np.int64))
        with pytest.raises(TypeError):
            region_fingerprint(union)
