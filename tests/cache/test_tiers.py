"""The tiered cache: LRU bounds, telemetry, invalidation, threading."""

from __future__ import annotations

import threading

import pytest

from repro.cache import (
    CacheConfig,
    CacheTier,
    TieredCache,
    configure,
    get_cache,
    set_cache,
)


class TestCacheTier:
    def test_hit_miss_counters_and_rate(self):
        tier = CacheTier("test", max_entries=4)
        assert tier.get("a") is None
        tier.put("a", 1)
        assert tier.get("a") == 1
        assert tier.hits == 1
        assert tier.misses == 1
        assert tier.hit_rate == 0.5

    def test_lru_eviction_order(self):
        tier = CacheTier("test", max_entries=2)
        tier.put("a", 1)
        tier.put("b", 2)
        assert tier.get("a") == 1  # refresh a
        tier.put("c", 3)  # evicts b (LRU)
        assert tier.get("b") is None
        assert tier.get("a") == 1
        assert tier.get("c") == 3
        assert len(tier) == 2
        assert tier.evictions == 1

    def test_byte_accounting(self):
        tier = CacheTier("test", max_entries=2)
        tier.put("a", 1, nbytes=100)
        tier.put("b", 2, nbytes=50)
        assert tier.nbytes == 150
        tier.put("a", 3, nbytes=10)  # replacement swaps the footprint
        assert tier.nbytes == 60
        tier.put("c", 4, nbytes=5)  # evicts b
        assert tier.nbytes == 15

    def test_sentinel_default_distinguishes_cached_none(self):
        tier = CacheTier("test", max_entries=2)
        sentinel = object()
        tier.put("a", None)
        assert tier.get("a", default=sentinel) is None
        assert tier.get("b", default=sentinel) is sentinel

    def test_zero_capacity_tier_is_inert(self):
        tier = CacheTier("off", max_entries=0)
        tier.put("a", 1)
        assert tier.get("a") is None
        assert len(tier) == 0

    def test_clear_resets_counters(self):
        tier = CacheTier("test", max_entries=2)
        tier.put("a", 1, nbytes=10)
        tier.get("a")
        tier.clear()
        assert len(tier) == 0
        assert tier.hits == 0 and tier.misses == 0 and tier.nbytes == 0

    def test_stats_snapshot(self):
        tier = CacheTier("test", max_entries=2)
        tier.put("a", 1, nbytes=10)
        tier.get("a")
        tier.get("b")
        stats = tier.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "bytes": 10,
            "hit_rate": 0.5,
        }

    def test_thread_safety_smoke(self):
        tier = CacheTier("test", max_entries=64)
        errors: list[Exception] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(500):
                    key = (seed + i) % 100
                    tier.put(key, i, nbytes=8)
                    tier.get((key * 7) % 100)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(tier) <= 64
        assert tier.hits + tier.misses == 8 * 500


class TestConfig:
    def test_rejects_empty_covering_tier(self):
        with pytest.raises(ValueError):
            CacheConfig(covering_entries=0)

    def test_result_tier_can_be_disabled(self):
        cache = TieredCache(CacheConfig(result_entries=0))
        cache.results.put("k", "v")
        assert cache.results.get("k") is None

    def test_rejects_negative_result_entries(self):
        with pytest.raises(ValueError):
            CacheConfig(result_entries=-1)


class TestTieredCache:
    def test_invalidate_dataset_drops_only_matching_tokens(self):
        cache = TieredCache()
        cache.results.put((1, "TRUE", 1, "fp", "count", None, False, False), "a")
        cache.results.put((1, "x > 1", 2, "fp", "count", None, False, False), "b")
        cache.results.put((2, "TRUE", 1, "fp", "count", None, False, False), "c")
        assert cache.invalidate_dataset(1) == 2
        assert len(cache.results) == 1
        assert cache.results.evictions == 2

    def test_stats_cover_both_tiers(self):
        stats = TieredCache().stats()
        assert set(stats) == {"covering", "result"}
        assert stats["covering"]["entries"] == 0


class TestGlobalInstance:
    def test_configure_replaces_and_restores(self):
        original = get_cache()
        try:
            replaced = configure(covering_entries=7, result_entries=3)
            assert get_cache() is replaced
            assert replaced.coverings.max_entries == 7
            assert replaced.results.max_entries == 3
        finally:
            set_cache(original)
        assert get_cache() is original
