"""Shared fixtures: a small deterministic dataset and common regions."""

from __future__ import annotations

import numpy as np
import pytest

# The runtime lock-order detector rides along with every test run; it
# is inert unless REPRO_LOCK_DEBUG=1 (CI's tier-1 job sets it), in
# which case any re-entrant RWLock acquisition or cross-lock order
# cycle the suite provokes fails the triggering test instead of
# deadlocking the job.
pytest_plugins = ("repro.analysis.pytest_plugin",)

from repro.cache import reset_cache
from repro.cells import EARTH
from repro.core import GeoBlock
from repro.geometry import BoundingBox, Polygon
from repro.storage import PointTable, Schema, extract


NYC_WINDOW = BoundingBox(-74.2, 40.5, -73.7, 40.95)


@pytest.fixture(autouse=True)
def _fresh_query_cache():
    """Isolate tests from the process-wide tiered cache.

    Coverings and results are content-addressed, so fixtures shared
    across tests (session-scoped polygons) would otherwise make
    hit/miss assertions order-dependent.
    """
    reset_cache()
    yield


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_table() -> PointTable:
    """20k clustered points with two numeric columns."""
    generator = np.random.default_rng(99)
    count = 20_000
    xs = np.concatenate(
        [
            generator.normal(-73.98, 0.03, count // 2),
            generator.normal(-73.80, 0.06, count // 2),
        ]
    )
    ys = np.concatenate(
        [
            generator.normal(40.75, 0.03, count // 2),
            generator.normal(40.68, 0.05, count // 2),
        ]
    )
    np.clip(xs, NYC_WINDOW.min_x, NYC_WINDOW.max_x, out=xs)
    np.clip(ys, NYC_WINDOW.min_y, NYC_WINDOW.max_y, out=ys)
    schema = Schema(["fare", "distance"])
    return PointTable(
        schema,
        xs,
        ys,
        {
            "fare": generator.gamma(3.0, 4.0, count),
            "distance": generator.gamma(2.0, 2.0, count),
        },
    )


@pytest.fixture(scope="session")
def small_base(small_table):
    return extract(small_table, EARTH)


@pytest.fixture(scope="session")
def small_block(small_base) -> GeoBlock:
    return GeoBlock.build(small_base, level=15)


@pytest.fixture(scope="session")
def quad_polygon() -> Polygon:
    """A quadrilateral straddling both point clusters."""
    return Polygon([(-74.05, 40.65), (-73.85, 40.63), (-73.82, 40.80), (-74.02, 40.82)])


@pytest.fixture(scope="session")
def small_polygons() -> list[Polygon]:
    """A handful of diverse query polygons."""
    generator = np.random.default_rng(7)
    polygons = []
    for _ in range(12):
        cx = generator.uniform(-74.15, -73.75)
        cy = generator.uniform(40.55, 40.9)
        radius = generator.uniform(0.01, 0.08)
        sides = int(generator.integers(3, 9))
        phase = generator.uniform(0, 3.0)
        polygons.append(Polygon.regular(cx, cy, radius, sides, phase))
    return polygons
